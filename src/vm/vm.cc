#include "vm/vm.h"

#include <cstring>
#include <map>

#include "support/diagnostics.h"

namespace ubfuzz::vm {

using ir::Inst;
using ir::Opcode;
using ir::ScalarKind;
using ir::Value;

const char *
reportKindName(ReportKind k)
{
    switch (k) {
      case ReportKind::None: return "none";
      case ReportKind::StackBufferOverflow: return "stack-buffer-overflow";
      case ReportKind::GlobalBufferOverflow:
        return "global-buffer-overflow";
      case ReportKind::HeapBufferOverflow: return "heap-buffer-overflow";
      case ReportKind::HeapUseAfterFree: return "heap-use-after-free";
      case ReportKind::StackUseAfterScope: return "stack-use-after-scope";
      case ReportKind::NullDeref: return "null-pointer-dereference";
      case ReportKind::SignedIntegerOverflow:
        return "signed-integer-overflow";
      case ReportKind::ShiftOutOfBounds: return "shift-out-of-bounds";
      case ReportKind::DivByZero: return "division-by-zero";
      case ReportKind::ArrayIndexOOB: return "array-index-out-of-bounds";
      case ReportKind::UninitValue: return "use-of-uninitialized-value";
    }
    return "?";
}

const char *
trapKindName(TrapKind k)
{
    switch (k) {
      case TrapKind::None: return "none";
      case TrapKind::Segfault: return "SIGSEGV";
      case TrapKind::DivByZero: return "SIGFPE";
      case TrapKind::StackOverflow: return "stack-overflow";
      case TrapKind::InvalidFree: return "invalid-free";
      case TrapKind::OutOfMemory: return "out-of-memory";
    }
    return "?";
}

std::string
ExecResult::str() const
{
    switch (kind) {
      case Kind::Clean:
        return "clean exit " + std::to_string(exitCode) + " checksum " +
               std::to_string(checksum);
      case Kind::Report:
        return std::string("sanitizer report: ") + reportKindName(report) +
               " at " + reportLoc.str();
      case Kind::Trap:
        return std::string("trap: ") + trapKindName(trap) + " at " +
               trapLoc.str();
      case Kind::Timeout:
        return "timeout";
    }
    return "?";
}

namespace {

constexpr uint64_t kGlobalBase = 0x10000000;
constexpr uint64_t kStackBase = 0x20000000;
constexpr uint64_t kHeapBase = 0x30000000;
constexpr uint64_t kStackCapacity = 1 << 20;
constexpr uint64_t kHeapCapacity = 8 << 20;
constexpr uint64_t kNullGuard = 0x1000;
constexpr uint8_t kFillByte = 0xAA;
constexpr uint32_t kMaxCallDepth = 200;
constexpr uint32_t kHeapRedzone = 32;

/** Poison codes stored in the ASan shadow. */
enum : uint8_t {
    kPoisonNone = 0,
    kPoisonStackRz = 1,
    kPoisonGlobalRz = 2,
    kPoisonHeapRz = 3,
    kPoisonFreed = 4,
    kPoisonScope = 5,
};

uint64_t
canonical(uint64_t raw, ScalarKind k)
{
    int bits = ast::scalarBits(k);
    if (bits >= 64 || bits == 0)
        return raw;
    uint64_t mask = (1ULL << bits) - 1;
    raw &= mask;
    if (ast::scalarSigned(k) && (raw & (1ULL << (bits - 1))))
        raw |= ~mask;
    return raw;
}

struct Segment
{
    uint64_t base = 0;
    std::vector<uint8_t> mem;
    std::vector<uint8_t> poison;
    std::vector<uint8_t> msh; ///< MSan definedness shadow (1 = uninit)

    bool
    contains(uint64_t addr, uint64_t size) const
    {
        return addr >= base && addr + size >= addr &&
               addr + size <= base + mem.size();
    }

    void
    grow(uint64_t new_size)
    {
        mem.resize(new_size, kFillByte);
        poison.resize(new_size, kPoisonNone);
        msh.resize(new_size, 0);
    }

    /** Drop contents but keep the allocations for the next run. */
    void
    clear()
    {
        mem.clear();
        poison.clear();
        msh.clear();
    }
};

struct Object
{
    uint64_t id = 0;
    uint64_t base = 0;
    uint64_t size = 0;
    ObjectKind kind = ObjectKind::Global;
    ObjectState state = ObjectState::Live;
    uint32_t declId = 0;
};

struct Frame
{
    const ir::Function *fn = nullptr;
    uint32_t block = 0;
    uint32_t ip = 0;
    std::vector<uint64_t> regs;
    std::vector<uint8_t> rsh; ///< register definedness (1 = uninit)
    /**
     * Ground-truth pointer provenance: the object id a register's
     * pointer value is derived from (0 = none). Mirrors the C notion
     * that `a[4]` is out of bounds of `a` even if the address happens
     * to land inside a neighbouring object.
     */
    std::vector<uint64_t> prov;
    /** Object id per frame-object index. */
    std::vector<uint64_t> objIds;
    uint64_t savedSp = 0;
    /** Where to put the return value in the caller. */
    uint32_t callerDst = 0;
    ScalarKind callerKind = ScalarKind::S64;
};

} // namespace

/**
 * The machine proper. Long-lived state (the stack arena with its two
 * shadow planes, vector capacities of every per-run container) is
 * built once; everything a run dirties is restored by reset() before
 * the next run, using a stack write watermark so the restore cost is
 * proportional to what the previous execution touched, not to the
 * arena size.
 */
struct Machine::Impl
{
    Impl()
    {
        globals_.base = kGlobalBase;
        stack_.base = kStackBase;
        stack_.grow(kStackCapacity);
        heap_.base = kHeapBase;
        stats_.machinesBuilt++;
    }

    ExecResult
    run(const ir::Module &m, const ExecOptions &opts)
    {
        UBF_ASSERT(m.mainIndex >= 0, "module has no main");
        reset();
        dirty_ = true;
        stats_.executions++;
        m_ = &m;
        opts_ = opts;
        trackShadow_ = m_->msan.enabled || opts_.groundTruth;
        loadGlobals();
        pushFrame(static_cast<uint32_t>(m_->mainIndex), {}, {}, 0,
                  ScalarKind::S32);
        while (!done_) {
            if (result_.steps >= opts_.stepLimit) {
                result_.kind = ExecResult::Kind::Timeout;
                break;
            }
            step();
        }
        return std::move(result_);
    }

    /** Restore the construction-time state of every arena. Counts the
     *  re-arm whether a caller asks for it or run() does. */
    void
    reset()
    {
        if (!dirty_)
            return;
        dirty_ = false;
        stats_.resets++;
        // Stack: restore only the dirtied prefix of the arena.
        uint64_t high = std::min<uint64_t>(stackDirty_, kStackCapacity);
        if (high) {
            std::memset(stack_.mem.data(), kFillByte, high);
            std::memset(stack_.poison.data(), kPoisonNone, high);
            std::memset(stack_.msh.data(), 0, high);
        }
        stackDirty_ = 0;
        // Globals and heap are rebuilt per run; keep the allocations.
        globals_.clear();
        heap_.clear();
        globalAddrs_.clear();
        globalObjIds_.clear();
        objects_.clear();
        byBase_.clear();
        memProv_.clear();
        frames_.clear();
        nextObjectId_ = 1;
        sp_ = kStackBase + 64;
        curLoc_ = SourceLoc{};
        result_ = ExecResult{};
        done_ = false;
    }

    //===------------------------------------------------------------===//
    // Memory plumbing
    //===------------------------------------------------------------===//

    /**
     * Record that stack bytes below @p endAddr were written. reset()
     * restores exactly [kStackBase, watermark) — every store path into
     * the stack segment (frame layout, Store/MemCopy, poison and MSan
     * shadow updates) must pass through here or through sp_ tracking,
     * or machine reuse would leak one run's bytes into the next.
     */
    void
    noteStackWrite(uint64_t endAddr)
    {
        if (endAddr <= kStackBase)
            return;
        uint64_t off = std::min<uint64_t>(endAddr - kStackBase,
                                          kStackCapacity);
        if (off > stackDirty_)
            stackDirty_ = off;
    }

    Segment *
    segmentFor(uint64_t addr, uint64_t size)
    {
        if (globals_.contains(addr, size))
            return &globals_;
        if (stack_.contains(addr, size))
            return &stack_;
        if (heap_.contains(addr, size))
            return &heap_;
        return nullptr;
    }

    /** addr -> provenance object id for pointer values in memory. */
    std::map<uint64_t, uint64_t> memProv_;

    uint64_t
    provOf(const Value &v)
    {
        if (!opts_.groundTruth || !v.isReg())
            return 0;
        return frames_.back().prov[v.reg];
    }

    void
    setProv(uint32_t dst, uint64_t objId)
    {
        if (opts_.groundTruth && dst)
            frames_.back().prov[dst] = objId;
    }

    uint64_t
    registerObject(uint64_t base, uint64_t size, ObjectKind kind,
                   uint32_t declId)
    {
        Object obj;
        obj.id = nextObjectId_++;
        obj.base = base;
        obj.size = size;
        obj.kind = kind;
        obj.declId = declId;
        objects_.push_back(obj);
        byBase_[base] = obj.id;
        return obj.id;
    }

    Object *
    objectById(uint64_t id)
    {
        return id ? &objects_[id - 1] : nullptr;
    }

    /** The object whose [base, base+size) contains or precedes @p addr. */
    Object *
    resolveObject(uint64_t addr)
    {
        auto it = byBase_.upper_bound(addr);
        if (it == byBase_.begin())
            return nullptr;
        --it;
        Object *obj = objectById(it->second);
        // Only resolve within the same segment region.
        uint64_t seg_base = addr & ~0xFFFFFFFULL;
        if ((obj->base & ~0xFFFFFFFULL) != seg_base)
            return nullptr;
        return obj;
    }

    void
    setPoison(uint64_t addr, uint64_t size, uint8_t code)
    {
        Segment *seg = segmentFor(addr, size);
        if (!seg)
            return;
        if (seg == &stack_)
            noteStackWrite(addr + size);
        std::memset(seg->poison.data() + (addr - seg->base),
                    code, size);
    }

    void
    setMsanShadow(uint64_t addr, uint64_t size, uint8_t v)
    {
        if (!trackShadow_)
            return;
        Segment *seg = segmentFor(addr, size);
        if (!seg)
            return;
        if (seg == &stack_)
            noteStackWrite(addr + size);
        std::memset(seg->msh.data() + (addr - seg->base), v, size);
    }

    //===------------------------------------------------------------===//
    // Program load
    //===------------------------------------------------------------===//

    std::vector<uint64_t> globalAddrs_;

    void
    loadGlobals()
    {
        uint64_t off = 64; // keep a small guard at segment start
        // Layout pass.
        for (const ir::GlobalObject &g : m_->globals) {
            uint32_t rz = m_->asanGlobals ? g.redzone : 0;
            off = (off + g.align - 1) / g.align * g.align;
            off += rz;
            // Redzones must keep natural alignment of the payload.
            off = (off + g.align - 1) / g.align * g.align;
            globalAddrs_.push_back(kGlobalBase + off);
            off += g.size + rz;
        }
        globals_.grow(off + 64);
        // Contents, shadow, object registry, relocations.
        for (size_t i = 0; i < m_->globals.size(); i++) {
            const ir::GlobalObject &g = m_->globals[i];
            uint64_t base = globalAddrs_[i];
            uint8_t *p = globals_.mem.data() + (base - kGlobalBase);
            std::memcpy(p, g.init.data(), g.size);
            setMsanShadow(base, g.size, 0);
            globalObjIds_.push_back(
                registerObject(base, g.size, ObjectKind::Global,
                               g.declId));
            if (m_->asanGlobals && g.redzone) {
                setPoison(base - g.redzone, g.redzone, kPoisonGlobalRz);
                // poisonSkip models the Wrong Red-Zone Buffer bug class
                // (Figure 12d): the first bytes past the object are
                // wrongly treated as valid padding.
                uint64_t skip = std::min<uint64_t>(g.poisonSkip,
                                                   g.redzone);
                setPoison(base + g.size + skip, g.redzone - skip,
                          kPoisonGlobalRz);
            }
        }
        for (size_t i = 0; i < m_->globals.size(); i++) {
            const ir::GlobalObject &g = m_->globals[i];
            uint64_t base = globalAddrs_[i];
            for (const auto &reloc : g.relocs) {
                uint64_t target = globalAddrs_[reloc.targetIndex] +
                                  static_cast<uint64_t>(reloc.addend);
                uint8_t *p = globals_.mem.data() +
                             (base + reloc.offset - kGlobalBase);
                std::memcpy(p, &target, 8);
                if (opts_.groundTruth) {
                    memProv_[base + reloc.offset] =
                        globalObjIds_[reloc.targetIndex];
                }
            }
        }
    }

    std::vector<uint64_t> globalObjIds_;

    //===------------------------------------------------------------===//
    // Frames and calls
    //===------------------------------------------------------------===//

    std::vector<Frame> frames_;
    uint64_t sp_ = kStackBase + 64;

    void
    pushFrame(uint32_t fnIndex, const std::vector<uint64_t> &args,
              const std::vector<uint8_t> &argShadow, uint32_t callerDst,
              ScalarKind callerKind,
              const std::vector<uint64_t> &argProv = {})
    {
        if (frames_.size() >= kMaxCallDepth) {
            trap(TrapKind::StackOverflow, curLoc_);
            return;
        }
        const ir::Function &fn = m_->functions[fnIndex];
        Frame f;
        f.fn = &fn;
        f.regs.assign(fn.numRegs, 0);
        f.rsh.assign(fn.numRegs, 0);
        if (opts_.groundTruth)
            f.prov.assign(fn.numRegs, 0);
        f.savedSp = sp_;
        f.callerDst = callerDst;
        f.callerKind = callerKind;
        // Lay out frame objects.
        for (size_t i = 0; i < fn.frame.size(); i++) {
            const ir::FrameObject &obj = fn.frame[i];
            uint32_t rz = obj.redzone;
            sp_ = (sp_ + obj.align - 1) / obj.align * obj.align;
            sp_ += rz;
            sp_ = (sp_ + obj.align - 1) / obj.align * obj.align;
            uint64_t base = sp_;
            sp_ += std::max<uint64_t>(obj.size, 1) + rz;
            noteStackWrite(sp_);
            if (sp_ > kStackBase + kStackCapacity) {
                trap(TrapKind::StackOverflow, curLoc_);
                return;
            }
            uint64_t id = registerObject(base, obj.size, ObjectKind::Stack,
                                         obj.declId);
            f.objIds.push_back(id);
            // Fresh stack memory: deterministic garbage, uninitialized.
            Segment &seg = stack_;
            std::memset(seg.mem.data() + (base - seg.base), kFillByte,
                        obj.size);
            setMsanShadow(base, obj.size, 1);
            if (rz) {
                setPoison(base - rz, rz, kPoisonStackRz);
                setPoison(base + obj.size, rz, kPoisonStackRz);
            }
        }
        // Write arguments into the parameter slots.
        for (uint32_t i = 0; i < fn.numParams && i < args.size(); i++) {
            uint64_t base = objects_[f.objIds[i] - 1].base;
            uint64_t size = fn.frame[i].size;
            uint8_t *p = stack_.mem.data() + (base - kStackBase);
            std::memcpy(p, &args[i], size);
            setMsanShadow(base, size,
                          i < argShadow.size() ? argShadow[i] : 0);
            if (opts_.groundTruth && i < argProv.size() && argProv[i] &&
                size == 8)
                memProv_[base] = argProv[i];
        }
        frames_.push_back(std::move(f));
    }

    void
    popFrame(uint64_t retValue, uint8_t retShadow, uint64_t retProv = 0)
    {
        Frame &f = frames_.back();
        // Retire this frame's objects.
        for (uint64_t id : f.objIds) {
            Object &obj = objects_[id - 1];
            auto it = byBase_.find(obj.base);
            if (it != byBase_.end() && it->second == id)
                byBase_.erase(it);
            obj.state = ObjectState::ScopeEnded;
        }
        // Clear poisoning over the whole frame (stack reuse is clean).
        uint64_t lo = f.savedSp, hi = sp_;
        if (hi > lo) {
            setPoison(lo, hi - lo, kPoisonNone);
            if (opts_.groundTruth) {
                memProv_.erase(memProv_.lower_bound(lo),
                               memProv_.lower_bound(hi));
            }
        }
        sp_ = f.savedSp;
        uint32_t dst = f.callerDst;
        ScalarKind k = f.callerKind;
        frames_.pop_back();
        if (frames_.empty()) {
            result_.exitCode =
                static_cast<int64_t>(canonical(retValue, k));
            done_ = true;
            return;
        }
        if (dst) {
            frames_.back().regs[dst] = canonical(retValue, k);
            frames_.back().rsh[dst] = retShadow;
            setProv(dst, retProv);
        }
        // Resume after the call instruction.
        frames_.back().ip++;
    }

    //===------------------------------------------------------------===//
    // Outcome helpers
    //===------------------------------------------------------------===//

    void
    report(ReportKind kind, SourceLoc loc)
    {
        result_.kind = ExecResult::Kind::Report;
        result_.report = kind;
        result_.reportLoc = loc;
        done_ = true;
    }

    void
    trap(TrapKind kind, SourceLoc loc)
    {
        result_.kind = ExecResult::Kind::Trap;
        result_.trap = kind;
        result_.trapLoc = loc;
        done_ = true;
    }

    //===------------------------------------------------------------===//
    // Operand evaluation
    //===------------------------------------------------------------===//

    uint64_t
    val(const Value &v)
    {
        if (v.isImm())
            return v.imm;
        UBF_ASSERT(v.isReg(), "evaluating empty operand");
        return frames_.back().regs[v.reg];
    }

    uint8_t
    shadow(const Value &v)
    {
        if (!trackShadow_ || !v.isReg())
            return 0;
        return frames_.back().rsh[v.reg];
    }

    void
    setReg(uint32_t dst, uint64_t value, uint8_t sh)
    {
        Frame &f = frames_.back();
        f.regs[dst] = value;
        if (trackShadow_)
            f.rsh[dst] = sh;
        if (opts_.groundTruth)
            f.prov[dst] = 0;
    }

    //===------------------------------------------------------------===//
    // The interpreter
    //===------------------------------------------------------------===//

    SourceLoc curLoc_;

    void
    recordTrace(SourceLoc loc)
    {
        if (!opts_.recordTrace || !loc.isValid())
            return;
        if (!result_.trace.empty() && result_.trace.back() == loc)
            return;
        result_.trace.push_back(loc);
    }

    void
    step()
    {
        Frame &f = frames_.back();
        const Inst &inst = f.fn->blocks[f.block].insts[f.ip];
        result_.steps++;
        if (inst.loc.isValid())
            curLoc_ = inst.loc;
        recordTrace(inst.loc);

        switch (inst.op) {
          case Opcode::Nop:
          case Opcode::LogScopeEnter:
          case Opcode::LogScopeExit:
            if (opts_.profile &&
                (inst.op == Opcode::LogScopeEnter ||
                 inst.op == Opcode::LogScopeExit)) {
                opts_.profile->scopes.push_back(
                    {val(inst.a), inst.op == Opcode::LogScopeEnter,
                     ++opts_.profile->eventSeq});
            }
            f.ip++;
            break;
          case Opcode::Const:
            setReg(inst.dst, canonical(inst.imm, inst.kind), 0);
            f.ip++;
            break;
          case Opcode::Cast: {
            uint64_t p = provOf(inst.a);
            setReg(inst.dst, canonical(val(inst.a), inst.kind),
                   shadow(inst.a));
            setProv(inst.dst, p);
            f.ip++;
            break;
          }
          case Opcode::Select: {
            bool c = val(inst.c) != 0;
            const Value &pick = c ? inst.a : inst.b;
            uint64_t p = provOf(pick);
            setReg(inst.dst, canonical(val(pick), inst.kind),
                   static_cast<uint8_t>(shadow(pick) | shadow(inst.c)));
            setProv(inst.dst, p);
            f.ip++;
            break;
          }
          case Opcode::Bin:
            execBin(inst);
            break;
          case Opcode::FrameAddr:
            setReg(inst.dst, objects_[f.objIds[inst.object] - 1].base, 0);
            setProv(inst.dst, f.objIds[inst.object]);
            f.ip++;
            break;
          case Opcode::GlobalAddr:
            setReg(inst.dst, globalAddrs_[inst.object], 0);
            setProv(inst.dst, globalObjIds_[inst.object]);
            f.ip++;
            break;
          case Opcode::Gep: {
            uint64_t base = val(inst.a);
            int64_t idx = static_cast<int64_t>(val(inst.b));
            if (opts_.groundTruth &&
                (shadow(inst.a) || shadow(inst.b))) {
                report(ReportKind::UninitValue, inst.loc);
                return;
            }
            uint64_t addr =
                base + static_cast<uint64_t>(
                           idx * static_cast<int64_t>(inst.imm));
            uint64_t p = provOf(inst.a);
            setReg(inst.dst, addr,
                   static_cast<uint8_t>(shadow(inst.a) |
                                        shadow(inst.b)));
            setProv(inst.dst, p);
            f.ip++;
            break;
          }
          case Opcode::Load:
            execLoad(inst);
            break;
          case Opcode::Store:
            execStore(inst);
            break;
          case Opcode::MemCopy:
            execMemCopy(inst);
            break;
          case Opcode::Br:
            f.block = inst.targets[0];
            f.ip = 0;
            break;
          case Opcode::CondBr: {
            if (opts_.groundTruth && shadow(inst.a)) {
                report(ReportKind::UninitValue, inst.loc);
                return;
            }
            f.block = val(inst.a) != 0 ? inst.targets[0]
                                       : inst.targets[1];
            f.ip = 0;
            break;
          }
          case Opcode::Ret: {
            uint64_t rv = inst.a.isNone() ? 0 : val(inst.a);
            uint8_t sh = inst.a.isNone() ? 0 : shadow(inst.a);
            popFrame(rv, sh, provOf(inst.a));
            break;
          }
          case Opcode::Call: {
            std::vector<uint64_t> args;
            std::vector<uint8_t> argShadow;
            std::vector<uint64_t> argProv;
            args.reserve(inst.args.size());
            for (const Value &a : inst.args) {
                args.push_back(val(a));
                argShadow.push_back(shadow(a));
                argProv.push_back(provOf(a));
            }
            // pushFrame does not advance ip: popFrame resumes after it.
            pushFrame(inst.callee, args, argShadow, inst.dst, inst.kind,
                      argProv);
            break;
          }
          case Opcode::Malloc:
            execMalloc(inst);
            break;
          case Opcode::Free:
            execFree(inst);
            break;
          case Opcode::Checksum: {
            uint64_t v = val(inst.a);
            if (opts_.groundTruth && shadow(inst.a)) {
                report(ReportKind::UninitValue, inst.loc);
                return;
            }
            result_.checksum = (result_.checksum ^ v) *
                               0x100000001b3ULL;
            f.ip++;
            break;
          }
          case Opcode::LogVal:
            if (opts_.profile) {
                opts_.profile->values[val(inst.a)].push_back(
                    static_cast<int64_t>(val(inst.b)));
            }
            f.ip++;
            break;
          case Opcode::LogPtr:
            if (opts_.profile) {
                PtrRecord rec;
                rec.address = val(inst.b);
                if (Object *obj = resolveObject(rec.address)) {
                    if (rec.address < obj->base + obj->size) {
                        rec.objectId = obj->id;
                        rec.objectBase = obj->base;
                        rec.objectSize = obj->size;
                        rec.objectKind = obj->kind;
                        rec.objectState = obj->state;
                    }
                }
                opts_.profile->pointers[val(inst.a)].push_back(rec);
            }
            f.ip++;
            break;
          case Opcode::LogBuf:
            if (opts_.profile) {
                BufRecord rec;
                rec.address = val(inst.b);
                rec.size = val(inst.c);
                if (Object *obj = resolveObject(rec.address)) {
                    rec.objectId = obj->id;
                    rec.objectKind = obj->kind;
                }
                opts_.profile->buffers[val(inst.a)].push_back(rec);
            }
            f.ip++;
            break;
          case Opcode::LifetimeStart: {
            Object &obj = objects_[f.objIds[inst.object] - 1];
            obj.state = ObjectState::Live;
            setPoison(obj.base, obj.size, kPoisonNone);
            setMsanShadow(obj.base, obj.size, 1);
            Segment &seg = stack_;
            std::memset(seg.mem.data() + (obj.base - seg.base),
                        kFillByte, obj.size);
            f.ip++;
            break;
          }
          case Opcode::LifetimeEnd: {
            Object &obj = objects_[f.objIds[inst.object] - 1];
            obj.state = ObjectState::ScopeEnded;
            if (f.fn->frame[inst.object].redzone)
                setPoison(obj.base, obj.size, kPoisonScope);
            f.ip++;
            break;
          }
          case Opcode::AsanCheck:
            execAsanCheck(inst);
            break;
          case Opcode::UbsanArith:
            execUbsanArith(inst);
            break;
          case Opcode::UbsanShift: {
            int64_t count = static_cast<int64_t>(val(inst.b));
            // flag = "negative counts only" (an injected check bug).
            bool bad = inst.flag
                           ? count < 0
                           : (count < 0 ||
                              count >= ast::scalarBits(inst.kind));
            if (bad) {
                report(ReportKind::ShiftOutOfBounds, inst.loc);
                return;
            }
            f.ip++;
            break;
          }
          case Opcode::UbsanDiv: {
            uint64_t b = val(inst.b);
            if (canonical(b, inst.kind) == 0) {
                report(ReportKind::DivByZero, inst.loc);
                return;
            }
            if (ast::scalarSigned(inst.kind)) {
                int bits = ast::scalarBits(inst.kind);
                int64_t minv = bits >= 64
                                   ? INT64_MIN
                                   : -(1LL << (bits - 1));
                if (static_cast<int64_t>(val(inst.a)) == minv &&
                    static_cast<int64_t>(canonical(b, inst.kind)) ==
                        -1) {
                    report(ReportKind::SignedIntegerOverflow, inst.loc);
                    return;
                }
            }
            f.ip++;
            break;
          }
          case Opcode::UbsanNull:
            if (val(inst.a) == 0) {
                report(ReportKind::NullDeref, inst.loc);
                return;
            }
            f.ip++;
            break;
          case Opcode::UbsanBounds: {
            int64_t idx = static_cast<int64_t>(val(inst.a));
            if (idx < 0 || static_cast<uint64_t>(idx) >= inst.imm) {
                report(ReportKind::ArrayIndexOOB, inst.loc);
                return;
            }
            f.ip++;
            break;
          }
          case Opcode::MsanCheck:
            if (m_->msan.enabled && shadow(inst.a)) {
                report(ReportKind::UninitValue, inst.loc);
                return;
            }
            f.ip++;
            break;
        }
    }

    //===------------------------------------------------------------===//
    // Arithmetic
    //===------------------------------------------------------------===//

    uint8_t
    binShadow(const Inst &inst)
    {
        if (!trackShadow_)
            return 0;
        uint8_t sh =
            static_cast<uint8_t>(shadow(inst.a) | shadow(inst.b));
        if (!sh)
            return 0;
        // MSan policy hooks (bug injection lives in the MSan pass; the
        // VM merely obeys the compiled policy). Figure 12f: the buggy
        // propagation path treats subtraction results as fully defined.
        if (m_->msan.bugSubConstDefined && inst.binOp == ir::BinOp::Sub)
            return 0;
        if (m_->msan.bugAndDefined && inst.binOp == ir::BinOp::BitAnd)
            return 0;
        return sh;
    }

    void
    execBin(const Inst &inst)
    {
        Frame &f = frames_.back();
        ScalarKind k = inst.kind;
        uint64_t a = canonical(val(inst.a), k);
        uint64_t b = canonical(val(inst.b), k);
        bool sgn = ast::scalarSigned(k);
        int bits = ast::scalarBits(k);

        // Ground truth: flag marks source-level arithmetic.
        if (opts_.groundTruth && inst.flag && sgn &&
            ast::isArithOp(inst.binOp)) {
            __int128 wa = static_cast<int64_t>(a);
            __int128 wb = static_cast<int64_t>(b);
            __int128 r = inst.binOp == ir::BinOp::Add   ? wa + wb
                         : inst.binOp == ir::BinOp::Sub ? wa - wb
                                                        : wa * wb;
            __int128 lo = -(static_cast<__int128>(1) << (bits - 1));
            __int128 hi = (static_cast<__int128>(1) << (bits - 1)) - 1;
            if (r < lo || r > hi) {
                report(ReportKind::SignedIntegerOverflow, inst.loc);
                return;
            }
        }
        if (opts_.groundTruth && inst.flag &&
            ast::isShiftOp(inst.binOp)) {
            int64_t count = static_cast<int64_t>(val(inst.b));
            if (count < 0 || count >= bits) {
                report(ReportKind::ShiftOutOfBounds, inst.loc);
                return;
            }
        }
        if (opts_.groundTruth && inst.flag &&
            ast::isDivRemOp(inst.binOp)) {
            if (shadow(inst.a) || shadow(inst.b)) {
                report(ReportKind::UninitValue, inst.loc);
                return;
            }
            if (b == 0) {
                report(ReportKind::DivByZero, inst.loc);
                return;
            }
            if (sgn && bits >= 1) {
                int64_t minv = bits >= 64 ? INT64_MIN
                                          : -(1LL << (bits - 1));
                if (static_cast<int64_t>(a) == minv &&
                    static_cast<int64_t>(b) == -1) {
                    report(ReportKind::SignedIntegerOverflow, inst.loc);
                    return;
                }
            }
        }

        bool trapped = false;
        uint64_t r = ir::evalBinary(inst.binOp, k, a, b, trapped);
        if (trapped) {
            // x86 #DE on division by zero and INT_MIN / -1.
            trap(TrapKind::DivByZero, inst.loc);
            return;
        }
        bool is_cmp = ast::isComparisonOp(inst.binOp);
        setReg(inst.dst,
               is_cmp ? (r ? 1 : 0) : canonical(r, k),
               binShadow(inst));
        if (opts_.groundTruth && !is_cmp) {
            // Pointer provenance survives arithmetic with a
            // non-pointer operand (p + k); it dies when both operands
            // carry provenance (p - q is a count, not a pointer).
            uint64_t pa = provOf(inst.a), pb = provOf(inst.b);
            if ((pa != 0) != (pb != 0))
                setProv(inst.dst, pa ? pa : pb);
        }
        f.ip++;
    }

    static uint64_t
    maskOf(int bits)
    {
        return bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
    }

    //===------------------------------------------------------------===//
    // Memory access
    //===------------------------------------------------------------===//

    /** Ground-truth precise access check. @return true when reported. */
    bool
    preciseCheck(uint64_t addr, uint64_t size, SourceLoc loc,
                 uint64_t prov = 0)
    {
        if (!opts_.groundTruth)
            return false;
        if (addr < kNullGuard) {
            report(ReportKind::NullDeref, loc);
            return true;
        }
        Object *obj = prov ? objectById(prov) : resolveObject(addr);
        if (prov && (addr < obj->base)) {
            // Underflow of the derived-from object.
            report(obj->kind == ObjectKind::Stack
                       ? ReportKind::StackBufferOverflow
                   : obj->kind == ObjectKind::Heap
                       ? ReportKind::HeapBufferOverflow
                       : ReportKind::GlobalBufferOverflow,
                   loc);
            return true;
        }
        if (!obj || addr >= obj->base + obj->size + (prov ? 0 : 256)) {
            if (prov) {
                Object *o = objectById(prov);
                report(o->kind == ObjectKind::Stack
                           ? ReportKind::StackBufferOverflow
                       : o->kind == ObjectKind::Heap
                           ? ReportKind::HeapBufferOverflow
                           : ReportKind::GlobalBufferOverflow,
                       loc);
                return true;
            }
            // Far from any object: classify by segment.
            report(ReportKind::GlobalBufferOverflow, loc);
            return true;
        }
        ReportKind overflow_kind =
            obj->kind == ObjectKind::Stack
                ? ReportKind::StackBufferOverflow
            : obj->kind == ObjectKind::Heap
                ? ReportKind::HeapBufferOverflow
                : ReportKind::GlobalBufferOverflow;
        if (addr + size > obj->base + obj->size) {
            report(overflow_kind, loc);
            return true;
        }
        if (obj->state == ObjectState::Freed) {
            report(ReportKind::HeapUseAfterFree, loc);
            return true;
        }
        if (obj->state == ObjectState::ScopeEnded) {
            report(ReportKind::StackUseAfterScope, loc);
            return true;
        }
        return false;
    }

    void
    execLoad(const Inst &inst)
    {
        Frame &f = frames_.back();
        uint64_t addr = val(inst.a);
        uint64_t size = inst.imm;
        if (shadow(inst.a) && opts_.groundTruth) {
            report(ReportKind::UninitValue, inst.loc);
            return;
        }
        if (preciseCheck(addr, size, inst.loc, provOf(inst.a)))
            return;
        if (addr < kNullGuard) {
            trap(TrapKind::Segfault, inst.loc);
            return;
        }
        Segment *seg = segmentFor(addr, size);
        if (!seg) {
            trap(TrapKind::Segfault, inst.loc);
            return;
        }
        uint64_t raw = 0;
        std::memcpy(&raw, seg->mem.data() + (addr - seg->base),
                    std::min<uint64_t>(size, 8));
        uint8_t sh = 0;
        if (trackShadow_) {
            for (uint64_t i = 0; i < size; i++)
                sh |= seg->msh[addr - seg->base + i];
        }
        setReg(inst.dst, canonical(raw, inst.kind), sh);
        if (opts_.groundTruth && size == 8) {
            auto it = memProv_.find(addr);
            if (it != memProv_.end())
                setProv(inst.dst, it->second);
        }
        f.ip++;
    }

    void
    execStore(const Inst &inst)
    {
        Frame &f = frames_.back();
        uint64_t addr = val(inst.a);
        uint64_t size = inst.imm;
        if (shadow(inst.a) && opts_.groundTruth) {
            report(ReportKind::UninitValue, inst.loc);
            return;
        }
        if (preciseCheck(addr, size, inst.loc, provOf(inst.a)))
            return;
        if (addr < kNullGuard) {
            trap(TrapKind::Segfault, inst.loc);
            return;
        }
        Segment *seg = segmentFor(addr, size);
        if (!seg) {
            trap(TrapKind::Segfault, inst.loc);
            return;
        }
        uint64_t v = val(inst.b);
        if (seg == &stack_)
            noteStackWrite(addr + size);
        std::memcpy(seg->mem.data() + (addr - seg->base), &v,
                    std::min<uint64_t>(size, 8));
        if (trackShadow_)
            setMsanShadow(addr, size, shadow(inst.b));
        if (opts_.groundTruth) {
            uint64_t p = provOf(inst.b);
            if (p && size == 8)
                memProv_[addr] = p;
            else
                memProv_.erase(addr);
        }
        f.ip++;
    }

    void
    execMemCopy(const Inst &inst)
    {
        Frame &f = frames_.back();
        uint64_t dst = val(inst.a);
        uint64_t src = val(inst.b);
        uint64_t size = inst.imm;
        if (preciseCheck(src, size, inst.loc, provOf(inst.b)) ||
            preciseCheck(dst, size, inst.loc, provOf(inst.a)))
            return;
        if (dst < kNullGuard || src < kNullGuard) {
            trap(TrapKind::Segfault, inst.loc);
            return;
        }
        Segment *sseg = segmentFor(src, size);
        Segment *dseg = segmentFor(dst, size);
        if (!sseg || !dseg) {
            trap(TrapKind::Segfault, inst.loc);
            return;
        }
        if (dseg == &stack_)
            noteStackWrite(dst + size);
        std::memmove(dseg->mem.data() + (dst - dseg->base),
                     sseg->mem.data() + (src - sseg->base), size);
        if (trackShadow_) {
            std::memmove(dseg->msh.data() + (dst - dseg->base),
                         sseg->msh.data() + (src - sseg->base), size);
        }
        if (opts_.groundTruth) {
            // Move pointer provenance along with the bytes.
            memProv_.erase(memProv_.lower_bound(dst),
                           memProv_.lower_bound(dst + size));
            std::vector<std::pair<uint64_t, uint64_t>> moved;
            for (auto it = memProv_.lower_bound(src);
                 it != memProv_.end() && it->first < src + size; ++it)
                moved.emplace_back(it->first - src + dst, it->second);
            for (const auto &[a, p] : moved)
                memProv_[a] = p;
        }
        f.ip++;
    }

    void
    execMalloc(const Inst &inst)
    {
        Frame &f = frames_.back();
        uint64_t size = std::max<uint64_t>(val(inst.a), 1);
        uint32_t rz = m_->asanHeap ? kHeapRedzone : 0;
        uint64_t off = heap_.mem.size();
        off = (off + 15) / 16 * 16;
        uint64_t total = rz + size + rz;
        if (off + total > kHeapCapacity) {
            trap(TrapKind::OutOfMemory, inst.loc);
            return;
        }
        heap_.grow(off + total);
        uint64_t base = kHeapBase + off + rz;
        uint64_t id = registerObject(base, size, ObjectKind::Heap, 0);
        setMsanShadow(base, size, 1);
        if (rz) {
            setPoison(base - rz, rz, kPoisonHeapRz);
            setPoison(base + size, rz, kPoisonHeapRz);
        }
        if (opts_.profile) {
            opts_.profile->heapAllocs.push_back(
                {id, base, size, ++opts_.profile->eventSeq, 0});
        }
        setReg(inst.dst, base, 0);
        setProv(inst.dst, id);
        f.ip++;
    }

    void
    execFree(const Inst &inst)
    {
        Frame &f = frames_.back();
        uint64_t addr = val(inst.a);
        if (addr == 0) { // free(NULL) is a no-op
            f.ip++;
            return;
        }
        auto it = byBase_.find(addr);
        Object *obj =
            it == byBase_.end() ? nullptr : objectById(it->second);
        if (!obj || obj->kind != ObjectKind::Heap ||
            obj->state != ObjectState::Live) {
            trap(TrapKind::InvalidFree, inst.loc);
            return;
        }
        obj->state = ObjectState::Freed;
        if (m_->asanHeap)
            setPoison(obj->base, obj->size, kPoisonFreed);
        if (opts_.profile) {
            for (auto &rec : opts_.profile->heapAllocs) {
                if (rec.objectId == obj->id && rec.freeSeq == 0)
                    rec.freeSeq = ++opts_.profile->eventSeq;
            }
        }
        f.ip++;
    }

    void
    execAsanCheck(const Inst &inst)
    {
        Frame &f = frames_.back();
        uint64_t addr = val(inst.a);
        uint64_t size = inst.imm;
        Segment *seg = segmentFor(addr, size);
        if (seg) {
            for (uint64_t i = 0; i < size; i++) {
                uint8_t code = seg->poison[addr - seg->base + i];
                if (code == kPoisonNone)
                    continue;
                ReportKind kind;
                switch (code) {
                  case kPoisonStackRz:
                    kind = ReportKind::StackBufferOverflow;
                    break;
                  case kPoisonGlobalRz:
                    kind = ReportKind::GlobalBufferOverflow;
                    break;
                  case kPoisonHeapRz:
                    kind = ReportKind::HeapBufferOverflow;
                    break;
                  case kPoisonFreed:
                    kind = ReportKind::HeapUseAfterFree;
                    break;
                  default:
                    kind = ReportKind::StackUseAfterScope;
                    break;
                }
                report(kind, inst.loc);
                return;
            }
        }
        f.ip++;
    }

    void
    execUbsanArith(const Inst &inst)
    {
        Frame &f = frames_.back();
        ScalarKind k = inst.kind;
        if (!ast::scalarSigned(k)) {
            f.ip++;
            return;
        }
        int bits = ast::scalarBits(k);
        __int128 a = static_cast<int64_t>(canonical(val(inst.a), k));
        __int128 b = static_cast<int64_t>(canonical(val(inst.b), k));
        __int128 r = inst.binOp == ir::BinOp::Add   ? a + b
                     : inst.binOp == ir::BinOp::Sub ? a - b
                                                    : a * b;
        __int128 lo = -(static_cast<__int128>(1) << (bits - 1));
        __int128 hi = (static_cast<__int128>(1) << (bits - 1)) - 1;
        if (r < lo || r > hi) {
            report(ReportKind::SignedIntegerOverflow, inst.loc);
            return;
        }
        f.ip++;
    }

    /** The module of the current run; bound by run(). */
    const ir::Module *m_ = nullptr;
    ExecOptions opts_;
    Segment globals_, stack_, heap_;
    std::vector<Object> objects_;
    std::map<uint64_t, uint64_t> byBase_;
    uint64_t nextObjectId_ = 1;
    bool trackShadow_ = false;
    ExecResult result_;
    bool done_ = false;
    /** Has a run dirtied the arenas since the last reset()? */
    bool dirty_ = false;
    /** End offset of the highest stack byte written this run. */
    uint64_t stackDirty_ = 0;
    ExecStats stats_;
};

Machine::Machine() : impl_(std::make_unique<Impl>()) {}
Machine::~Machine() = default;
Machine::Machine(Machine &&) noexcept = default;
Machine &Machine::operator=(Machine &&) noexcept = default;

ExecResult
Machine::run(const ir::Module &module, const ExecOptions &opts)
{
    return impl_->run(module, opts);
}

void
Machine::reset()
{
    impl_->reset();
}

const ExecStats &
Machine::stats() const
{
    return impl_->stats_;
}

void
Machine::noteDedupSkip()
{
    impl_->stats_.dedupSkips++;
}

ExecResult
execute(const ir::Module &module, const ExecOptions &opts)
{
    return Machine().run(module, opts);
}

} // namespace ubfuzz::vm
