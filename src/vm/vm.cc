#include "vm/vm.h"

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>

#include "support/diagnostics.h"
#include "vm/bytecode.h"

/**
 * Dispatch strategy for the bytecode interpreter: computed goto
 * (labels-as-values) where the compiler supports it, a tight switch in
 * a loop otherwise. The handler bodies are shared between both forms
 * via the VM_CASE/VM_NEXT macros in execProgram.
 */
#if (defined(__GNUC__) || defined(__clang__)) &&                           \
    !defined(UBFUZZ_NO_COMPUTED_GOTO)
#define UBFUZZ_CGOTO 1
#else
#define UBFUZZ_CGOTO 0
#endif

namespace ubfuzz::vm {

using ir::Inst;
using ir::Opcode;
using ir::ScalarKind;
using ir::Value;

const char *
reportKindName(ReportKind k)
{
    switch (k) {
      case ReportKind::None: return "none";
      case ReportKind::StackBufferOverflow: return "stack-buffer-overflow";
      case ReportKind::GlobalBufferOverflow:
        return "global-buffer-overflow";
      case ReportKind::HeapBufferOverflow: return "heap-buffer-overflow";
      case ReportKind::HeapUseAfterFree: return "heap-use-after-free";
      case ReportKind::StackUseAfterScope: return "stack-use-after-scope";
      case ReportKind::NullDeref: return "null-pointer-dereference";
      case ReportKind::SignedIntegerOverflow:
        return "signed-integer-overflow";
      case ReportKind::ShiftOutOfBounds: return "shift-out-of-bounds";
      case ReportKind::DivByZero: return "division-by-zero";
      case ReportKind::ArrayIndexOOB: return "array-index-out-of-bounds";
      case ReportKind::UninitValue: return "use-of-uninitialized-value";
      case ReportKind::HardeningFault: return "hardening-fault-detected";
    }
    return "?";
}

const char *
trapKindName(TrapKind k)
{
    switch (k) {
      case TrapKind::None: return "none";
      case TrapKind::Segfault: return "SIGSEGV";
      case TrapKind::DivByZero: return "SIGFPE";
      case TrapKind::StackOverflow: return "stack-overflow";
      case TrapKind::InvalidFree: return "invalid-free";
      case TrapKind::OutOfMemory: return "out-of-memory";
    }
    return "?";
}

std::string
ExecResult::str() const
{
    switch (kind) {
      case Kind::Clean:
        return "clean exit " + std::to_string(exitCode) + " checksum " +
               std::to_string(checksum);
      case Kind::Report:
        return std::string("sanitizer report: ") + reportKindName(report) +
               " at " + reportLoc.str();
      case Kind::Trap:
        return std::string("trap: ") + trapKindName(trap) + " at " +
               trapLoc.str();
      case Kind::Timeout:
        return "timeout";
    }
    return "?";
}

namespace {

constexpr uint64_t kGlobalBase = 0x10000000;
constexpr uint64_t kStackBase = 0x20000000;
constexpr uint64_t kHeapBase = 0x30000000;
constexpr uint64_t kStackCapacity = 1 << 20;
constexpr uint64_t kHeapCapacity = 8 << 20;
constexpr uint64_t kNullGuard = 0x1000;
constexpr uint8_t kFillByte = 0xAA;
constexpr uint32_t kMaxCallDepth = 200;
constexpr uint32_t kHeapRedzone = 32;

/** Poison codes stored in the ASan shadow. */
enum : uint8_t {
    kPoisonNone = 0,
    kPoisonStackRz = 1,
    kPoisonGlobalRz = 2,
    kPoisonHeapRz = 3,
    kPoisonFreed = 4,
    kPoisonScope = 5,
};

uint64_t
canonical(uint64_t raw, ScalarKind k)
{
    int bits = ast::scalarBits(k);
    if (bits >= 64 || bits == 0)
        return raw;
    uint64_t mask = (1ULL << bits) - 1;
    raw &= mask;
    if (ast::scalarSigned(k) && (raw & (1ULL << (bits - 1))))
        raw |= ~mask;
    return raw;
}

struct Segment
{
    uint64_t base = 0;
    std::vector<uint8_t> mem;
    std::vector<uint8_t> poison;
    std::vector<uint8_t> msh; ///< MSan definedness shadow (1 = uninit)

    bool
    contains(uint64_t addr, uint64_t size) const
    {
        return addr >= base && addr + size >= addr &&
               addr + size <= base + mem.size();
    }

    void
    grow(uint64_t new_size)
    {
        mem.resize(new_size, kFillByte);
        poison.resize(new_size, kPoisonNone);
        msh.resize(new_size, 0);
    }

    /** Drop contents but keep the allocations for the next run. */
    void
    clear()
    {
        mem.clear();
        poison.clear();
        msh.clear();
    }
};

struct Object
{
    uint64_t id = 0;
    uint64_t base = 0;
    uint64_t size = 0;
    ObjectKind kind = ObjectKind::Global;
    ObjectState state = ObjectState::Live;
    uint32_t declId = 0;
};

struct Frame
{
    const ir::Function *fn = nullptr;
    uint32_t block = 0;
    uint32_t ip = 0;
    std::vector<uint64_t> regs;
    std::vector<uint8_t> rsh; ///< register definedness (1 = uninit)
    /**
     * Ground-truth pointer provenance: the object id a register's
     * pointer value is derived from (0 = none). Mirrors the C notion
     * that `a[4]` is out of bounds of `a` even if the address happens
     * to land inside a neighbouring object.
     */
    std::vector<uint64_t> prov;
    /** Object id per frame-object index. */
    std::vector<uint64_t> objIds;
    uint64_t savedSp = 0;
    /** Where to put the return value in the caller. */
    uint32_t callerDst = 0;
    ScalarKind callerKind = ScalarKind::S64;
};

/**
 * A bytecode frame: like Frame but pc-based (no block/ip pair) and
 * pooled — popped frames keep their vector capacities and are reused
 * by the next push, so a recursive workload stops allocating once the
 * call depth has been visited. Shadow/provenance planes are assigned
 * only in the dispatch modes that read them.
 */
struct BFrame
{
    uint32_t fnIdx = 0;
    /** pc to resume at in the caller (call pc + 1). */
    uint32_t retPc = 0;
    uint32_t callerDst = 0;
    ScalarKind callerKind = ScalarKind::S64;
    uint64_t savedSp = 0;
    std::vector<uint64_t> regs;
    std::vector<uint8_t> rsh;
    std::vector<uint64_t> prov;
    std::vector<uint64_t> objIds;
};

/** The dispatch modes the interpreter loop is instantiated over. The
 *  first three pay zero per-step option tests; Generic re-tests the
 *  run options at each use (tracing / profiling runs only). */
enum class Mode : uint8_t { Silent, Shadow, Ground, Generic };

/** canonical() with the scalar width/signedness pre-decoded by the
 *  flattener (same math; no ast::scalarBits call in the hot loop). */
inline uint64_t
canonFast(uint64_t raw, int bits, bool sgn)
{
    if (bits >= 64 || bits == 0)
        return raw;
    uint64_t mask = (1ULL << bits) - 1;
    raw &= mask;
    if (sgn && (raw & (1ULL << (bits - 1))))
        raw |= ~mask;
    return raw;
}

/**
 * Scalar memory access with the width dispatched over the sizes the IR
 * actually uses. Same bytes as memcpy(&v, p, min(size, 8)) — but a
 * variable-length memcpy compiles to a libc call inside the two
 * hottest handlers, while these collapse to a single fixed-width move
 * per case.
 */
inline uint64_t
loadScalar(const uint8_t *p, uint64_t size)
{
    switch (size) {
      case 1: {
        return *p;
      }
      case 2: {
        uint16_t v;
        std::memcpy(&v, p, 2);
        return v;
      }
      case 4: {
        uint32_t v;
        std::memcpy(&v, p, 4);
        return v;
      }
      case 8: {
        uint64_t v;
        std::memcpy(&v, p, 8);
        return v;
      }
      default: {
        uint64_t v = 0;
        std::memcpy(&v, p, std::min<uint64_t>(size, 8));
        return v;
      }
    }
}

/**
 * ir::evalBinary inlined for the dispatch loop: operands arrive
 * pre-canonicalized (fastBin runs canonFast first) and the result is
 * returned raw — the caller canonicalizes the destination write — so
 * the entry/exit canonicalizations and the scalarBits/scalarSigned
 * kind switches of the out-of-line version drop out. The arithmetic
 * itself must mirror ir::evalBinary exactly; the bytecode parity suite
 * compares against the reference interpreter, which still calls it.
 */
inline uint64_t
evalBinFast(ir::BinOp op, int bits, bool sgn, uint64_t a, uint64_t b,
            bool &trapped)
{
    trapped = false;
    const uint64_t mask = bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
    switch (op) {
      case ir::BinOp::Add: return a + b;
      case ir::BinOp::Sub: return a - b;
      case ir::BinOp::Mul: return a * b;
      case ir::BinOp::Div:
      case ir::BinOp::Rem: {
        if (b == 0) {
            trapped = true;
            return 0;
        }
        if (sgn) {
            int64_t sa = static_cast<int64_t>(a);
            int64_t sb = static_cast<int64_t>(b);
            int64_t minv = bits >= 64 ? INT64_MIN : -(1LL << (bits - 1));
            if (sa == minv && sb == -1) {
                trapped = true;
                return 0;
            }
            return static_cast<uint64_t>(op == ir::BinOp::Div ? sa / sb
                                                              : sa % sb);
        }
        uint64_t ua = a & mask, ub = b & mask;
        return op == ir::BinOp::Div ? ua / ub : ua % ub;
      }
      case ir::BinOp::Shl:
      case ir::BinOp::Shr: {
        uint64_t count = b & (bits == 64 ? 63 : 31);
        if (op == ir::BinOp::Shl)
            return a << count;
        if (sgn)
            return static_cast<uint64_t>(static_cast<int64_t>(a) >>
                                         count);
        return (a & mask) >> count;
      }
      case ir::BinOp::BitAnd: return a & b;
      case ir::BinOp::BitOr: return a | b;
      case ir::BinOp::BitXor: return a ^ b;
      case ir::BinOp::Lt:
        return sgn ? static_cast<int64_t>(a) < static_cast<int64_t>(b)
                   : (a & mask) < (b & mask);
      case ir::BinOp::Le:
        return sgn ? static_cast<int64_t>(a) <= static_cast<int64_t>(b)
                   : (a & mask) <= (b & mask);
      case ir::BinOp::Gt:
        return sgn ? static_cast<int64_t>(a) > static_cast<int64_t>(b)
                   : (a & mask) > (b & mask);
      case ir::BinOp::Ge:
        return sgn ? static_cast<int64_t>(a) >= static_cast<int64_t>(b)
                   : (a & mask) >= (b & mask);
      case ir::BinOp::Eq: return a == b;
      case ir::BinOp::Ne: return a != b;
      case ir::BinOp::LAnd:
      case ir::BinOp::LOr:
        UBF_PANIC("logical ops never reach evalBinFast");
    }
    return 0;
}

inline void
storeScalar(uint8_t *p, uint64_t v, uint64_t size)
{
    switch (size) {
      case 1: {
        *p = static_cast<uint8_t>(v);
        break;
      }
      case 2: {
        const uint16_t t = static_cast<uint16_t>(v);
        std::memcpy(p, &t, 2);
        break;
      }
      case 4: {
        const uint32_t t = static_cast<uint32_t>(v);
        std::memcpy(p, &t, 4);
        break;
      }
      case 8: {
        std::memcpy(p, &v, 8);
        break;
      }
      default: {
        std::memcpy(p, &v, std::min<uint64_t>(size, 8));
        break;
      }
    }
}

} // namespace

/**
 * The machine proper. Long-lived state (the stack arena with its two
 * shadow planes, vector capacities of every per-run container) is
 * built once; everything a run dirties is restored by reset() before
 * the next run, using a stack write watermark so the restore cost is
 * proportional to what the previous execution touched, not to the
 * arena size.
 */
struct Machine::Impl
{
    explicit Impl(CodeCache *cache) : cache_(cache ? cache : &ownCache_)
    {
        globals_.base = kGlobalBase;
        stack_.base = kStackBase;
        stack_.grow(kStackCapacity);
        heap_.base = kHeapBase;
        stats_.machinesBuilt++;
    }

    /** The hot path: resolve @p m to a (possibly cached) translation
     *  and interpret it with the mode-specialized dispatch loop. */
    ExecResult
    run(const ir::Module &m, const ExecOptions &opts,
        const ir::BinaryKey *key)
    {
        UBF_ASSERT(m.mainIndex >= 0, "module has no main");
        if (opts.fault) {
            // Fault runs need step-exact timing: fused-tier handlers
            // retire two records per dispatch, so a cached (possibly
            // quickened) translation is unusable. Translate fresh at
            // the baseline tier; the extra translation keeps the
            // `executions == translations + hits` identity.
            stats_.translations++;
            bc::Program prog = bc::translate(m, bc::kTierBaseline);
            return runBytecode(prog, opts);
        }
        bool hit = false;
        std::shared_ptr<const bc::Program> prog = cache_->translation(
            m, key ? *key : ir::binaryKey(m), &hit);
        if (hit)
            stats_.translationHits++;
        else
            stats_.translations++;
        return runBytecode(*prog, opts);
    }

    ExecResult
    runBytecode(const bc::Program &p, const ExecOptions &opts)
    {
        reset();
        dirty_ = true;
        stats_.executions++;
        bp_ = &p;
        opts_ = opts;
        trackShadow_ = p.msan.enabled || opts_.groundTruth;
        loadGlobals(p.globals, p.asanGlobals);
        if (opts_.recordTrace || opts_.profile || opts_.fault)
            execProgram<Mode::Generic>();
        else if (opts_.groundTruth)
            execProgram<Mode::Ground>();
        else if (trackShadow_)
            execProgram<Mode::Shadow>();
        else
            execProgram<Mode::Silent>();
        bp_ = nullptr;
        return std::move(result_);
    }

    /** The reference struct-walking interpreter (pre-flattener
     *  semantics, kept verbatim): the parity baseline. */
    ExecResult
    runReference(const ir::Module &m, const ExecOptions &opts)
    {
        UBF_ASSERT(m.mainIndex >= 0, "module has no main");
        reset();
        dirty_ = true;
        stats_.executions++;
        m_ = &m;
        opts_ = opts;
        trackShadow_ = m_->msan.enabled || opts_.groundTruth;
        loadGlobals(m_->globals, m_->asanGlobals);
        pushFrame(static_cast<uint32_t>(m_->mainIndex), {}, {}, 0,
                  ScalarKind::S32);
        while (!done_) {
            if (result_.steps >= opts_.stepLimit) {
                result_.kind = ExecResult::Kind::Timeout;
                break;
            }
            step();
        }
        return std::move(result_);
    }

    /** Restore the construction-time state of every arena. Counts the
     *  re-arm whether a caller asks for it or run() does. */
    void
    reset()
    {
        if (!dirty_)
            return;
        dirty_ = false;
        stats_.resets++;
        // Stack: restore only the dirtied prefix of the arena.
        uint64_t high = std::min<uint64_t>(stackDirty_, kStackCapacity);
        if (high) {
            std::memset(stack_.mem.data(), kFillByte, high);
            std::memset(stack_.poison.data(), kPoisonNone, high);
            std::memset(stack_.msh.data(), 0, high);
        }
        stackDirty_ = 0;
        // Globals and heap are rebuilt per run; keep the allocations.
        globals_.clear();
        heap_.clear();
        globalAddrs_.clear();
        globalObjIds_.clear();
        objects_.clear();
        byBase_.clear();
        stackObjs_.clear();
        memProv_.clear();
        frames_.clear();
        bframeTop_ = 0;
        nextObjectId_ = 1;
        sp_ = kStackBase + 64;
        curLoc_ = SourceLoc{};
        result_ = ExecResult{};
        done_ = false;
        poisonDirty_ = false;
    }

    //===------------------------------------------------------------===//
    // Memory plumbing
    //===------------------------------------------------------------===//

    /**
     * Record that stack bytes below @p endAddr were written. reset()
     * restores exactly [kStackBase, watermark) — every store path into
     * the stack segment (frame layout, Store/MemCopy, poison and MSan
     * shadow updates) must pass through here or through sp_ tracking,
     * or machine reuse would leak one run's bytes into the next.
     */
    void
    noteStackWrite(uint64_t endAddr)
    {
        if (endAddr <= kStackBase)
            return;
        uint64_t off = std::min<uint64_t>(endAddr - kStackBase,
                                          kStackCapacity);
        if (off > stackDirty_)
            stackDirty_ = off;
    }

    Segment *
    segmentFor(uint64_t addr, uint64_t size)
    {
        if (globals_.contains(addr, size))
            return &globals_;
        if (stack_.contains(addr, size))
            return &stack_;
        if (heap_.contains(addr, size))
            return &heap_;
        return nullptr;
    }

    /** addr -> provenance object id for pointer values in memory. */
    std::map<uint64_t, uint64_t> memProv_;

    uint64_t
    provOf(const Value &v)
    {
        if (!opts_.groundTruth || !v.isReg())
            return 0;
        return frames_.back().prov[v.reg];
    }

    void
    setProv(uint32_t dst, uint64_t objId)
    {
        if (opts_.groundTruth && dst)
            frames_.back().prov[dst] = objId;
    }

    uint64_t
    registerObject(uint64_t base, uint64_t size, ObjectKind kind,
                   uint32_t declId)
    {
        Object obj;
        obj.id = nextObjectId_++;
        obj.base = base;
        obj.size = size;
        obj.kind = kind;
        obj.declId = declId;
        objects_.push_back(obj);
        if (kind == ObjectKind::Stack)
            stackObjs_.emplace_back(base, obj.id);
        else
            byBase_[base] = obj.id;
        return obj.id;
    }

    Object *
    objectById(uint64_t id)
    {
        return id ? &objects_[id - 1] : nullptr;
    }

    /** The object whose [base, base+size) contains or precedes @p addr. */
    Object *
    resolveObject(uint64_t addr)
    {
        if (addr >= kStackBase && addr < kHeapBase) {
            auto it = std::upper_bound(
                stackObjs_.begin(), stackObjs_.end(), addr,
                [](uint64_t a, const std::pair<uint64_t, uint64_t> &p) {
                    return a < p.first;
                });
            if (it == stackObjs_.begin())
                return nullptr;
            return objectById(std::prev(it)->second);
        }
        auto it = byBase_.upper_bound(addr);
        if (it == byBase_.begin())
            return nullptr;
        --it;
        Object *obj = objectById(it->second);
        // Only resolve within the same segment region.
        uint64_t seg_base = addr & ~0xFFFFFFFULL;
        if ((obj->base & ~0xFFFFFFFULL) != seg_base)
            return nullptr;
        return obj;
    }

    /** Drop a popped frame's objects from the stack-object index (the
     *  suffix of stackObjs_, pushed most recently). */
    void
    unregisterFrameObjects(const std::vector<uint64_t> &objIds)
    {
        for (size_t i = objIds.size(); i--;) {
            Object &obj = objects_[objIds[i] - 1];
            obj.state = ObjectState::ScopeEnded;
            if (!stackObjs_.empty() &&
                stackObjs_.back().second == objIds[i])
                stackObjs_.pop_back();
        }
    }

    void
    setPoison(uint64_t addr, uint64_t size, uint8_t code)
    {
        // Clearing an all-clear plane (frame pops and lifetime starts
        // in uninstrumented runs) is a no-op; skip the memset.
        if (code == kPoisonNone && !poisonDirty_)
            return;
        if (code != kPoisonNone)
            poisonDirty_ = true;
        Segment *seg = segmentFor(addr, size);
        if (!seg)
            return;
        if (seg == &stack_)
            noteStackWrite(addr + size);
        std::memset(seg->poison.data() + (addr - seg->base),
                    code, size);
    }

    void
    setMsanShadow(uint64_t addr, uint64_t size, uint8_t v)
    {
        if (!trackShadow_)
            return;
        Segment *seg = segmentFor(addr, size);
        if (!seg)
            return;
        if (seg == &stack_)
            noteStackWrite(addr + size);
        std::memset(seg->msh.data() + (addr - seg->base), v, size);
    }

    //===------------------------------------------------------------===//
    // Program load
    //===------------------------------------------------------------===//

    std::vector<uint64_t> globalAddrs_;

    /** Shared by both interpreters: the reference passes the module's
     *  globals, the bytecode path the translation's copy. */
    void
    loadGlobals(const std::vector<ir::GlobalObject> &globals,
                bool asanGlobals)
    {
        uint64_t off = 64; // keep a small guard at segment start
        // Layout pass.
        for (const ir::GlobalObject &g : globals) {
            uint32_t rz = asanGlobals ? g.redzone : 0;
            off = (off + g.align - 1) / g.align * g.align;
            off += rz;
            // Redzones must keep natural alignment of the payload.
            off = (off + g.align - 1) / g.align * g.align;
            globalAddrs_.push_back(kGlobalBase + off);
            off += g.size + rz;
        }
        globals_.grow(off + 64);
        // Contents, shadow, object registry, relocations.
        for (size_t i = 0; i < globals.size(); i++) {
            const ir::GlobalObject &g = globals[i];
            uint64_t base = globalAddrs_[i];
            uint8_t *p = globals_.mem.data() + (base - kGlobalBase);
            std::memcpy(p, g.init.data(), g.size);
            setMsanShadow(base, g.size, 0);
            globalObjIds_.push_back(
                registerObject(base, g.size, ObjectKind::Global,
                               g.declId));
            if (asanGlobals && g.redzone) {
                setPoison(base - g.redzone, g.redzone, kPoisonGlobalRz);
                // poisonSkip models the Wrong Red-Zone Buffer bug class
                // (Figure 12d): the first bytes past the object are
                // wrongly treated as valid padding.
                uint64_t skip = std::min<uint64_t>(g.poisonSkip,
                                                   g.redzone);
                setPoison(base + g.size + skip, g.redzone - skip,
                          kPoisonGlobalRz);
            }
        }
        for (size_t i = 0; i < globals.size(); i++) {
            const ir::GlobalObject &g = globals[i];
            uint64_t base = globalAddrs_[i];
            for (const auto &reloc : g.relocs) {
                uint64_t target = globalAddrs_[reloc.targetIndex] +
                                  static_cast<uint64_t>(reloc.addend);
                uint8_t *p = globals_.mem.data() +
                             (base + reloc.offset - kGlobalBase);
                std::memcpy(p, &target, 8);
                if (opts_.groundTruth) {
                    memProv_[base + reloc.offset] =
                        globalObjIds_[reloc.targetIndex];
                }
            }
        }
    }

    std::vector<uint64_t> globalObjIds_;

    //===------------------------------------------------------------===//
    // Frames and calls
    //===------------------------------------------------------------===//

    std::vector<Frame> frames_;
    uint64_t sp_ = kStackBase + 64;

    void
    pushFrame(uint32_t fnIndex, const std::vector<uint64_t> &args,
              const std::vector<uint8_t> &argShadow, uint32_t callerDst,
              ScalarKind callerKind,
              const std::vector<uint64_t> &argProv = {})
    {
        if (frames_.size() >= kMaxCallDepth) {
            trap(TrapKind::StackOverflow, curLoc_);
            return;
        }
        const ir::Function &fn = m_->functions[fnIndex];
        Frame f;
        f.fn = &fn;
        f.regs.assign(fn.numRegs, 0);
        f.rsh.assign(fn.numRegs, 0);
        if (opts_.groundTruth)
            f.prov.assign(fn.numRegs, 0);
        f.savedSp = sp_;
        f.callerDst = callerDst;
        f.callerKind = callerKind;
        // Lay out frame objects.
        for (size_t i = 0; i < fn.frame.size(); i++) {
            const ir::FrameObject &obj = fn.frame[i];
            uint32_t rz = obj.redzone;
            sp_ = (sp_ + obj.align - 1) / obj.align * obj.align;
            sp_ += rz;
            sp_ = (sp_ + obj.align - 1) / obj.align * obj.align;
            uint64_t base = sp_;
            sp_ += std::max<uint64_t>(obj.size, 1) + rz;
            noteStackWrite(sp_);
            if (sp_ > kStackBase + kStackCapacity) {
                trap(TrapKind::StackOverflow, curLoc_);
                return;
            }
            uint64_t id = registerObject(base, obj.size, ObjectKind::Stack,
                                         obj.declId);
            f.objIds.push_back(id);
            // Fresh stack memory: deterministic garbage, uninitialized.
            Segment &seg = stack_;
            std::memset(seg.mem.data() + (base - seg.base), kFillByte,
                        obj.size);
            setMsanShadow(base, obj.size, 1);
            if (rz) {
                setPoison(base - rz, rz, kPoisonStackRz);
                setPoison(base + obj.size, rz, kPoisonStackRz);
            }
        }
        // Write arguments into the parameter slots.
        for (uint32_t i = 0; i < fn.numParams && i < args.size(); i++) {
            uint64_t base = objects_[f.objIds[i] - 1].base;
            uint64_t size = fn.frame[i].size;
            uint8_t *p = stack_.mem.data() + (base - kStackBase);
            std::memcpy(p, &args[i], size);
            setMsanShadow(base, size,
                          i < argShadow.size() ? argShadow[i] : 0);
            if (opts_.groundTruth && i < argProv.size() && argProv[i] &&
                size == 8)
                memProv_[base] = argProv[i];
        }
        frames_.push_back(std::move(f));
    }

    void
    popFrame(uint64_t retValue, uint8_t retShadow, uint64_t retProv = 0)
    {
        Frame &f = frames_.back();
        // Retire this frame's objects.
        unregisterFrameObjects(f.objIds);
        // Clear poisoning over the whole frame (stack reuse is clean).
        uint64_t lo = f.savedSp, hi = sp_;
        if (hi > lo) {
            setPoison(lo, hi - lo, kPoisonNone);
            if (opts_.groundTruth) {
                memProv_.erase(memProv_.lower_bound(lo),
                               memProv_.lower_bound(hi));
            }
        }
        sp_ = f.savedSp;
        uint32_t dst = f.callerDst;
        ScalarKind k = f.callerKind;
        frames_.pop_back();
        if (frames_.empty()) {
            result_.exitCode =
                static_cast<int64_t>(canonical(retValue, k));
            done_ = true;
            return;
        }
        if (dst) {
            frames_.back().regs[dst] = canonical(retValue, k);
            frames_.back().rsh[dst] = retShadow;
            setProv(dst, retProv);
        }
        // Resume after the call instruction.
        frames_.back().ip++;
    }

    //===------------------------------------------------------------===//
    // Outcome helpers
    //===------------------------------------------------------------===//

    void
    report(ReportKind kind, SourceLoc loc)
    {
        result_.kind = ExecResult::Kind::Report;
        result_.report = kind;
        result_.reportLoc = loc;
        done_ = true;
    }

    void
    trap(TrapKind kind, SourceLoc loc)
    {
        result_.kind = ExecResult::Kind::Trap;
        result_.trap = kind;
        result_.trapLoc = loc;
        done_ = true;
    }

    //===------------------------------------------------------------===//
    // Operand evaluation
    //===------------------------------------------------------------===//

    uint64_t
    val(const Value &v)
    {
        if (v.isImm())
            return v.imm;
        UBF_ASSERT(v.isReg(), "evaluating empty operand");
        return frames_.back().regs[v.reg];
    }

    uint8_t
    shadow(const Value &v)
    {
        if (!trackShadow_ || !v.isReg())
            return 0;
        return frames_.back().rsh[v.reg];
    }

    void
    setReg(uint32_t dst, uint64_t value, uint8_t sh)
    {
        Frame &f = frames_.back();
        f.regs[dst] = value;
        if (trackShadow_)
            f.rsh[dst] = sh;
        if (opts_.groundTruth)
            f.prov[dst] = 0;
    }

    //===------------------------------------------------------------===//
    // The interpreter
    //===------------------------------------------------------------===//

    SourceLoc curLoc_;

    /**
     * Apply the armed FaultPlan to the current frame: flip one bit in
     * a register or a frame-slot byte. Both interpreters call this
     * from the same point of the dispatch preamble (after the step
     * counter reached plan.step, before that step's instruction
     * executes), so fault runs are bit-identical across them. The plan
     * is modulo-reduced onto whatever the frame actually has; a frame
     * with no eligible victim of the chosen kind falls back to the
     * other kind, and a frame with neither leaves the run untouched.
     */
    void
    applyFault(std::vector<uint64_t> &regs,
               const std::vector<uint64_t> &objIds,
               const std::vector<ir::FrameObject> &frame)
    {
        const FaultPlan &fp = *opts_.fault;
        const bool wantSlot = fp.target & 1;
        const uint64_t rest = fp.target >> 1;
        auto flipSlot = [&]() -> bool {
            if (objIds.empty())
                return false;
            const size_t idx = rest % objIds.size();
            const uint64_t size = frame[idx].size;
            if (!size)
                return false;
            const uint64_t base = objects_[objIds[idx] - 1].base;
            const uint64_t byte = (rest / objIds.size()) % size;
            stack_.mem[base - stack_.base + byte] ^=
                static_cast<uint8_t>(1u << (fp.bitIndex % 8));
            noteStackWrite(base + byte + 1);
            return true;
        };
        auto flipReg = [&]() -> bool {
            if (regs.size() <= 1)
                return false;
            const size_t idx = 1 + rest % (regs.size() - 1);
            regs[idx] ^= 1ULL << (fp.bitIndex % 64);
            return true;
        };
        bool applied = wantSlot ? (flipSlot() || flipReg())
                                : (flipReg() || flipSlot());
        if (applied) {
            result_.faultApplied = true;
            stats_.faultInjections++;
        }
    }

    void
    recordTrace(SourceLoc loc)
    {
        if (!opts_.recordTrace || !loc.isValid())
            return;
        if (!result_.trace.empty() && result_.trace.back() == loc)
            return;
        result_.trace.push_back(loc);
    }

    void
    step()
    {
        Frame &f = frames_.back();
        const Inst &inst = f.fn->blocks[f.block].insts[f.ip];
        result_.steps++;
        if (inst.loc.isValid())
            curLoc_ = inst.loc;
        recordTrace(inst.loc);
        if (opts_.fault && result_.steps == opts_.fault->step)
            applyFault(f.regs, f.objIds, f.fn->frame);

        switch (inst.op) {
          case Opcode::Nop:
          case Opcode::LogScopeEnter:
          case Opcode::LogScopeExit:
            if (opts_.profile &&
                (inst.op == Opcode::LogScopeEnter ||
                 inst.op == Opcode::LogScopeExit)) {
                opts_.profile->scopes.push_back(
                    {val(inst.a), inst.op == Opcode::LogScopeEnter,
                     ++opts_.profile->eventSeq});
            }
            f.ip++;
            break;
          case Opcode::Const:
            setReg(inst.dst, canonical(inst.imm, inst.kind), 0);
            f.ip++;
            break;
          case Opcode::Cast: {
            uint64_t p = provOf(inst.a);
            setReg(inst.dst, canonical(val(inst.a), inst.kind),
                   shadow(inst.a));
            setProv(inst.dst, p);
            f.ip++;
            break;
          }
          case Opcode::Select: {
            bool c = val(inst.c) != 0;
            const Value &pick = c ? inst.a : inst.b;
            uint64_t p = provOf(pick);
            setReg(inst.dst, canonical(val(pick), inst.kind),
                   static_cast<uint8_t>(shadow(pick) | shadow(inst.c)));
            setProv(inst.dst, p);
            f.ip++;
            break;
          }
          case Opcode::Bin:
            execBin(inst);
            break;
          case Opcode::FrameAddr:
            setReg(inst.dst, objects_[f.objIds[inst.object] - 1].base, 0);
            setProv(inst.dst, f.objIds[inst.object]);
            f.ip++;
            break;
          case Opcode::GlobalAddr:
            setReg(inst.dst, globalAddrs_[inst.object], 0);
            setProv(inst.dst, globalObjIds_[inst.object]);
            f.ip++;
            break;
          case Opcode::Gep: {
            uint64_t base = val(inst.a);
            int64_t idx = static_cast<int64_t>(val(inst.b));
            if (opts_.groundTruth &&
                (shadow(inst.a) || shadow(inst.b))) {
                report(ReportKind::UninitValue, inst.loc);
                return;
            }
            uint64_t addr =
                base + static_cast<uint64_t>(
                           idx * static_cast<int64_t>(inst.imm));
            uint64_t p = provOf(inst.a);
            setReg(inst.dst, addr,
                   static_cast<uint8_t>(shadow(inst.a) |
                                        shadow(inst.b)));
            setProv(inst.dst, p);
            f.ip++;
            break;
          }
          case Opcode::Load:
            execLoad(inst);
            break;
          case Opcode::Store:
            execStore(inst);
            break;
          case Opcode::MemCopy:
            execMemCopy(inst);
            break;
          case Opcode::Br:
            f.block = inst.targets[0];
            f.ip = 0;
            break;
          case Opcode::CondBr: {
            if (opts_.groundTruth && shadow(inst.a)) {
                report(ReportKind::UninitValue, inst.loc);
                return;
            }
            f.block = val(inst.a) != 0 ? inst.targets[0]
                                       : inst.targets[1];
            f.ip = 0;
            break;
          }
          case Opcode::Ret: {
            uint64_t rv = inst.a.isNone() ? 0 : val(inst.a);
            uint8_t sh = inst.a.isNone() ? 0 : shadow(inst.a);
            popFrame(rv, sh, provOf(inst.a));
            break;
          }
          case Opcode::Call: {
            std::vector<uint64_t> args;
            std::vector<uint8_t> argShadow;
            std::vector<uint64_t> argProv;
            args.reserve(inst.args.size());
            for (const Value &a : inst.args) {
                args.push_back(val(a));
                argShadow.push_back(shadow(a));
                argProv.push_back(provOf(a));
            }
            // pushFrame does not advance ip: popFrame resumes after it.
            pushFrame(inst.callee, args, argShadow, inst.dst, inst.kind,
                      argProv);
            break;
          }
          case Opcode::Malloc:
            execMalloc(inst);
            break;
          case Opcode::Free:
            execFree(inst);
            break;
          case Opcode::Checksum: {
            uint64_t v = val(inst.a);
            if (opts_.groundTruth && shadow(inst.a)) {
                report(ReportKind::UninitValue, inst.loc);
                return;
            }
            result_.checksum = (result_.checksum ^ v) *
                               0x100000001b3ULL;
            f.ip++;
            break;
          }
          case Opcode::LogVal:
            if (opts_.profile) {
                opts_.profile->values[val(inst.a)].push_back(
                    static_cast<int64_t>(val(inst.b)));
            }
            f.ip++;
            break;
          case Opcode::LogPtr:
            if (opts_.profile) {
                PtrRecord rec;
                rec.address = val(inst.b);
                if (Object *obj = resolveObject(rec.address)) {
                    if (rec.address < obj->base + obj->size) {
                        rec.objectId = obj->id;
                        rec.objectBase = obj->base;
                        rec.objectSize = obj->size;
                        rec.objectKind = obj->kind;
                        rec.objectState = obj->state;
                    }
                }
                opts_.profile->pointers[val(inst.a)].push_back(rec);
            }
            f.ip++;
            break;
          case Opcode::LogBuf:
            if (opts_.profile) {
                BufRecord rec;
                rec.address = val(inst.b);
                rec.size = val(inst.c);
                if (Object *obj = resolveObject(rec.address)) {
                    rec.objectId = obj->id;
                    rec.objectKind = obj->kind;
                }
                opts_.profile->buffers[val(inst.a)].push_back(rec);
            }
            f.ip++;
            break;
          case Opcode::LifetimeStart: {
            Object &obj = objects_[f.objIds[inst.object] - 1];
            obj.state = ObjectState::Live;
            setPoison(obj.base, obj.size, kPoisonNone);
            setMsanShadow(obj.base, obj.size, 1);
            Segment &seg = stack_;
            std::memset(seg.mem.data() + (obj.base - seg.base),
                        kFillByte, obj.size);
            f.ip++;
            break;
          }
          case Opcode::LifetimeEnd: {
            Object &obj = objects_[f.objIds[inst.object] - 1];
            obj.state = ObjectState::ScopeEnded;
            if (f.fn->frame[inst.object].redzone)
                setPoison(obj.base, obj.size, kPoisonScope);
            f.ip++;
            break;
          }
          case Opcode::AsanCheck:
            execAsanCheck(inst);
            break;
          case Opcode::UbsanArith:
            execUbsanArith(inst);
            break;
          case Opcode::UbsanShift: {
            int64_t count = static_cast<int64_t>(val(inst.b));
            // flag = "negative counts only" (an injected check bug).
            bool bad = inst.flag
                           ? count < 0
                           : (count < 0 ||
                              count >= ast::scalarBits(inst.kind));
            if (bad) {
                report(ReportKind::ShiftOutOfBounds, inst.loc);
                return;
            }
            f.ip++;
            break;
          }
          case Opcode::UbsanDiv: {
            uint64_t b = val(inst.b);
            if (canonical(b, inst.kind) == 0) {
                report(ReportKind::DivByZero, inst.loc);
                return;
            }
            if (ast::scalarSigned(inst.kind)) {
                int bits = ast::scalarBits(inst.kind);
                int64_t minv = bits >= 64
                                   ? INT64_MIN
                                   : -(1LL << (bits - 1));
                if (static_cast<int64_t>(val(inst.a)) == minv &&
                    static_cast<int64_t>(canonical(b, inst.kind)) ==
                        -1) {
                    report(ReportKind::SignedIntegerOverflow, inst.loc);
                    return;
                }
            }
            f.ip++;
            break;
          }
          case Opcode::UbsanNull:
            if (val(inst.a) == 0) {
                report(ReportKind::NullDeref, inst.loc);
                return;
            }
            f.ip++;
            break;
          case Opcode::UbsanBounds: {
            int64_t idx = static_cast<int64_t>(val(inst.a));
            if (idx < 0 || static_cast<uint64_t>(idx) >= inst.imm) {
                report(ReportKind::ArrayIndexOOB, inst.loc);
                return;
            }
            f.ip++;
            break;
          }
          case Opcode::MsanCheck:
            if (m_->msan.enabled && shadow(inst.a)) {
                report(ReportKind::UninitValue, inst.loc);
                return;
            }
            f.ip++;
            break;
          case Opcode::HardenCheck:
            // Armed only while a fault plan is in effect: on the
            // ordinary sanitizer matrix a hardened binary must be
            // report-for-report identical to its unhardened twin, even
            // when the program's own UB corrupts a shadow slot.
            if (opts_.fault && val(inst.a) != val(inst.b)) {
                report(ReportKind::HardeningFault, inst.loc);
                return;
            }
            f.ip++;
            break;
        }
    }

    //===------------------------------------------------------------===//
    // Arithmetic
    //===------------------------------------------------------------===//

    uint8_t
    binShadow(const Inst &inst)
    {
        if (!trackShadow_)
            return 0;
        uint8_t sh =
            static_cast<uint8_t>(shadow(inst.a) | shadow(inst.b));
        if (!sh)
            return 0;
        // MSan policy hooks (bug injection lives in the MSan pass; the
        // VM merely obeys the compiled policy). Figure 12f: the buggy
        // propagation path treats subtraction results as fully defined.
        if (m_->msan.bugSubConstDefined && inst.binOp == ir::BinOp::Sub)
            return 0;
        if (m_->msan.bugAndDefined && inst.binOp == ir::BinOp::BitAnd)
            return 0;
        return sh;
    }

    void
    execBin(const Inst &inst)
    {
        Frame &f = frames_.back();
        ScalarKind k = inst.kind;
        uint64_t a = canonical(val(inst.a), k);
        uint64_t b = canonical(val(inst.b), k);
        bool sgn = ast::scalarSigned(k);
        int bits = ast::scalarBits(k);

        // Ground truth: flag marks source-level arithmetic.
        if (opts_.groundTruth && inst.flag && sgn &&
            ast::isArithOp(inst.binOp)) {
            __int128 wa = static_cast<int64_t>(a);
            __int128 wb = static_cast<int64_t>(b);
            __int128 r = inst.binOp == ir::BinOp::Add   ? wa + wb
                         : inst.binOp == ir::BinOp::Sub ? wa - wb
                                                        : wa * wb;
            __int128 lo = -(static_cast<__int128>(1) << (bits - 1));
            __int128 hi = (static_cast<__int128>(1) << (bits - 1)) - 1;
            if (r < lo || r > hi) {
                report(ReportKind::SignedIntegerOverflow, inst.loc);
                return;
            }
        }
        if (opts_.groundTruth && inst.flag &&
            ast::isShiftOp(inst.binOp)) {
            int64_t count = static_cast<int64_t>(val(inst.b));
            if (count < 0 || count >= bits) {
                report(ReportKind::ShiftOutOfBounds, inst.loc);
                return;
            }
        }
        if (opts_.groundTruth && inst.flag &&
            ast::isDivRemOp(inst.binOp)) {
            if (shadow(inst.a) || shadow(inst.b)) {
                report(ReportKind::UninitValue, inst.loc);
                return;
            }
            if (b == 0) {
                report(ReportKind::DivByZero, inst.loc);
                return;
            }
            if (sgn && bits >= 1) {
                int64_t minv = bits >= 64 ? INT64_MIN
                                          : -(1LL << (bits - 1));
                if (static_cast<int64_t>(a) == minv &&
                    static_cast<int64_t>(b) == -1) {
                    report(ReportKind::SignedIntegerOverflow, inst.loc);
                    return;
                }
            }
        }

        bool trapped = false;
        uint64_t r = ir::evalBinary(inst.binOp, k, a, b, trapped);
        if (trapped) {
            // x86 #DE on division by zero and INT_MIN / -1.
            trap(TrapKind::DivByZero, inst.loc);
            return;
        }
        bool is_cmp = ast::isComparisonOp(inst.binOp);
        setReg(inst.dst,
               is_cmp ? (r ? 1 : 0) : canonical(r, k),
               binShadow(inst));
        if (opts_.groundTruth && !is_cmp) {
            // Pointer provenance survives arithmetic with a
            // non-pointer operand (p + k); it dies when both operands
            // carry provenance (p - q is a count, not a pointer).
            uint64_t pa = provOf(inst.a), pb = provOf(inst.b);
            if ((pa != 0) != (pb != 0))
                setProv(inst.dst, pa ? pa : pb);
        }
        f.ip++;
    }

    static uint64_t
    maskOf(int bits)
    {
        return bits >= 64 ? ~0ULL : (1ULL << bits) - 1;
    }

    //===------------------------------------------------------------===//
    // Memory access
    //===------------------------------------------------------------===//

    /** Ground-truth precise access check. @return true when reported. */
    bool
    preciseCheck(uint64_t addr, uint64_t size, SourceLoc loc,
                 uint64_t prov = 0)
    {
        if (!opts_.groundTruth)
            return false;
        if (addr < kNullGuard) {
            report(ReportKind::NullDeref, loc);
            return true;
        }
        Object *obj = prov ? objectById(prov) : resolveObject(addr);
        if (prov && (addr < obj->base)) {
            // Underflow of the derived-from object.
            report(obj->kind == ObjectKind::Stack
                       ? ReportKind::StackBufferOverflow
                   : obj->kind == ObjectKind::Heap
                       ? ReportKind::HeapBufferOverflow
                       : ReportKind::GlobalBufferOverflow,
                   loc);
            return true;
        }
        if (!obj || addr >= obj->base + obj->size + (prov ? 0 : 256)) {
            if (prov) {
                Object *o = objectById(prov);
                report(o->kind == ObjectKind::Stack
                           ? ReportKind::StackBufferOverflow
                       : o->kind == ObjectKind::Heap
                           ? ReportKind::HeapBufferOverflow
                           : ReportKind::GlobalBufferOverflow,
                       loc);
                return true;
            }
            // Far from any object: classify by segment.
            report(ReportKind::GlobalBufferOverflow, loc);
            return true;
        }
        ReportKind overflow_kind =
            obj->kind == ObjectKind::Stack
                ? ReportKind::StackBufferOverflow
            : obj->kind == ObjectKind::Heap
                ? ReportKind::HeapBufferOverflow
                : ReportKind::GlobalBufferOverflow;
        if (addr + size > obj->base + obj->size) {
            report(overflow_kind, loc);
            return true;
        }
        if (obj->state == ObjectState::Freed) {
            report(ReportKind::HeapUseAfterFree, loc);
            return true;
        }
        if (obj->state == ObjectState::ScopeEnded) {
            report(ReportKind::StackUseAfterScope, loc);
            return true;
        }
        return false;
    }

    void
    execLoad(const Inst &inst)
    {
        Frame &f = frames_.back();
        uint64_t addr = val(inst.a);
        uint64_t size = inst.imm;
        if (shadow(inst.a) && opts_.groundTruth) {
            report(ReportKind::UninitValue, inst.loc);
            return;
        }
        if (preciseCheck(addr, size, inst.loc, provOf(inst.a)))
            return;
        if (addr < kNullGuard) {
            trap(TrapKind::Segfault, inst.loc);
            return;
        }
        Segment *seg = segmentFor(addr, size);
        if (!seg) {
            trap(TrapKind::Segfault, inst.loc);
            return;
        }
        const uint64_t raw =
            loadScalar(seg->mem.data() + (addr - seg->base), size);
        uint8_t sh = 0;
        if (trackShadow_) {
            for (uint64_t i = 0; i < size; i++)
                sh |= seg->msh[addr - seg->base + i];
        }
        setReg(inst.dst, canonical(raw, inst.kind), sh);
        if (opts_.groundTruth && size == 8) {
            auto it = memProv_.find(addr);
            if (it != memProv_.end())
                setProv(inst.dst, it->second);
        }
        f.ip++;
    }

    void
    execStore(const Inst &inst)
    {
        Frame &f = frames_.back();
        uint64_t addr = val(inst.a);
        uint64_t size = inst.imm;
        if (shadow(inst.a) && opts_.groundTruth) {
            report(ReportKind::UninitValue, inst.loc);
            return;
        }
        if (preciseCheck(addr, size, inst.loc, provOf(inst.a)))
            return;
        if (addr < kNullGuard) {
            trap(TrapKind::Segfault, inst.loc);
            return;
        }
        Segment *seg = segmentFor(addr, size);
        if (!seg) {
            trap(TrapKind::Segfault, inst.loc);
            return;
        }
        uint64_t v = val(inst.b);
        if (seg == &stack_)
            noteStackWrite(addr + size);
        storeScalar(seg->mem.data() + (addr - seg->base), v, size);
        if (trackShadow_)
            setMsanShadow(addr, size, shadow(inst.b));
        if (opts_.groundTruth) {
            uint64_t p = provOf(inst.b);
            if (p && size == 8)
                memProv_[addr] = p;
            else
                memProv_.erase(addr);
        }
        f.ip++;
    }

    void
    execMemCopy(const Inst &inst)
    {
        Frame &f = frames_.back();
        uint64_t dst = val(inst.a);
        uint64_t src = val(inst.b);
        uint64_t size = inst.imm;
        if (preciseCheck(src, size, inst.loc, provOf(inst.b)) ||
            preciseCheck(dst, size, inst.loc, provOf(inst.a)))
            return;
        if (dst < kNullGuard || src < kNullGuard) {
            trap(TrapKind::Segfault, inst.loc);
            return;
        }
        Segment *sseg = segmentFor(src, size);
        Segment *dseg = segmentFor(dst, size);
        if (!sseg || !dseg) {
            trap(TrapKind::Segfault, inst.loc);
            return;
        }
        if (dseg == &stack_)
            noteStackWrite(dst + size);
        std::memmove(dseg->mem.data() + (dst - dseg->base),
                     sseg->mem.data() + (src - sseg->base), size);
        if (trackShadow_) {
            std::memmove(dseg->msh.data() + (dst - dseg->base),
                         sseg->msh.data() + (src - sseg->base), size);
        }
        if (opts_.groundTruth) {
            // Move pointer provenance along with the bytes.
            memProv_.erase(memProv_.lower_bound(dst),
                           memProv_.lower_bound(dst + size));
            std::vector<std::pair<uint64_t, uint64_t>> moved;
            for (auto it = memProv_.lower_bound(src);
                 it != memProv_.end() && it->first < src + size; ++it)
                moved.emplace_back(it->first - src + dst, it->second);
            for (const auto &[a, p] : moved)
                memProv_[a] = p;
        }
        f.ip++;
    }

    void
    execMalloc(const Inst &inst)
    {
        Frame &f = frames_.back();
        uint64_t size = std::max<uint64_t>(val(inst.a), 1);
        uint32_t rz = m_->asanHeap ? kHeapRedzone : 0;
        uint64_t off = heap_.mem.size();
        off = (off + 15) / 16 * 16;
        uint64_t total = rz + size + rz;
        if (off + total > kHeapCapacity) {
            trap(TrapKind::OutOfMemory, inst.loc);
            return;
        }
        heap_.grow(off + total);
        uint64_t base = kHeapBase + off + rz;
        uint64_t id = registerObject(base, size, ObjectKind::Heap, 0);
        setMsanShadow(base, size, 1);
        if (rz) {
            setPoison(base - rz, rz, kPoisonHeapRz);
            setPoison(base + size, rz, kPoisonHeapRz);
        }
        if (opts_.profile) {
            opts_.profile->heapAllocs.push_back(
                {id, base, size, ++opts_.profile->eventSeq, 0});
        }
        setReg(inst.dst, base, 0);
        setProv(inst.dst, id);
        f.ip++;
    }

    void
    execFree(const Inst &inst)
    {
        Frame &f = frames_.back();
        uint64_t addr = val(inst.a);
        if (addr == 0) { // free(NULL) is a no-op
            f.ip++;
            return;
        }
        auto it = byBase_.find(addr);
        Object *obj =
            it == byBase_.end() ? nullptr : objectById(it->second);
        if (!obj || obj->kind != ObjectKind::Heap ||
            obj->state != ObjectState::Live) {
            trap(TrapKind::InvalidFree, inst.loc);
            return;
        }
        obj->state = ObjectState::Freed;
        if (m_->asanHeap)
            setPoison(obj->base, obj->size, kPoisonFreed);
        if (opts_.profile) {
            for (auto &rec : opts_.profile->heapAllocs) {
                if (rec.objectId == obj->id && rec.freeSeq == 0)
                    rec.freeSeq = ++opts_.profile->eventSeq;
            }
        }
        f.ip++;
    }

    void
    execAsanCheck(const Inst &inst)
    {
        Frame &f = frames_.back();
        uint64_t addr = val(inst.a);
        uint64_t size = inst.imm;
        Segment *seg = segmentFor(addr, size);
        if (seg) {
            for (uint64_t i = 0; i < size; i++) {
                uint8_t code = seg->poison[addr - seg->base + i];
                if (code == kPoisonNone)
                    continue;
                ReportKind kind;
                switch (code) {
                  case kPoisonStackRz:
                    kind = ReportKind::StackBufferOverflow;
                    break;
                  case kPoisonGlobalRz:
                    kind = ReportKind::GlobalBufferOverflow;
                    break;
                  case kPoisonHeapRz:
                    kind = ReportKind::HeapBufferOverflow;
                    break;
                  case kPoisonFreed:
                    kind = ReportKind::HeapUseAfterFree;
                    break;
                  default:
                    kind = ReportKind::StackUseAfterScope;
                    break;
                }
                report(kind, inst.loc);
                return;
            }
        }
        f.ip++;
    }

    void
    execUbsanArith(const Inst &inst)
    {
        Frame &f = frames_.back();
        ScalarKind k = inst.kind;
        if (!ast::scalarSigned(k)) {
            f.ip++;
            return;
        }
        int bits = ast::scalarBits(k);
        __int128 a = static_cast<int64_t>(canonical(val(inst.a), k));
        __int128 b = static_cast<int64_t>(canonical(val(inst.b), k));
        __int128 r = inst.binOp == ir::BinOp::Add   ? a + b
                     : inst.binOp == ir::BinOp::Sub ? a - b
                                                    : a * b;
        __int128 lo = -(static_cast<__int128>(1) << (bits - 1));
        __int128 hi = (static_cast<__int128>(1) << (bits - 1)) - 1;
        if (r < lo || r > hi) {
            report(ReportKind::SignedIntegerOverflow, inst.loc);
            return;
        }
        f.ip++;
    }

    //===------------------------------------------------------------===//
    // The bytecode interpreter (the hot path)
    //
    // One dispatch loop, instantiated per Mode. The specialized modes
    // compile the shadow/ground-truth/trace/profile tests away; the
    // Generic instantiation re-tests the run options like the
    // reference interpreter does (it only runs for traced or profiled
    // executions). Every handler mirrors the corresponding step() arm
    // of the reference interpreter exactly — including evaluation
    // order around register writes — so results are bit-identical
    // (test_bytecode's parity suite).
    //===------------------------------------------------------------===//

    static constexpr uint32_t kNoLocPc = 0xFFFFFFFFu;

    template <Mode M>
    bool
    mShadow() const
    {
        if constexpr (M == Mode::Generic)
            return trackShadow_;
        else
            return M != Mode::Silent;
    }

    template <Mode M>
    bool
    mGround() const
    {
        if constexpr (M == Mode::Generic)
            return opts_.groundTruth;
        else
            return M == Mode::Ground;
    }

    template <Mode M>
    bool
    mTrace() const
    {
        if constexpr (M == Mode::Generic)
            return opts_.recordTrace;
        else
            return false;
    }

    template <Mode M>
    bool
    mProfile() const
    {
        if constexpr (M == Mode::Generic)
            return opts_.profile != nullptr;
        else
            return false;
    }

    /** Fault injection is a Generic-mode-only concern: the three hot
     *  modes compile the armed-plan test out entirely. */
    template <Mode M>
    bool
    mFault() const
    {
        if constexpr (M == Mode::Generic)
            return opts_.fault != nullptr;
        else
            return false;
    }

    /** Push a bytecode frame (args marshaled into the scratch arrays).
     *  @return false when a StackOverflow trap ended the run; the trap
     *  site is the last executed valid loc, like the reference. */
    template <Mode M>
    bool
    bcPushFrame(uint32_t fnIdx, uint32_t nArgs, uint32_t callerDst,
                ScalarKind callerKind, uint32_t retPc, uint32_t curLocPc)
    {
        auto curLoc = [&]() -> SourceLoc {
            return curLocPc == kNoLocPc ? SourceLoc{}
                                        : bp_->locs[curLocPc];
        };
        if (bframeTop_ >= kMaxCallDepth) {
            trap(TrapKind::StackOverflow, curLoc());
            return false;
        }
        const bc::BFunction &fn = bp_->functions[fnIdx];
        if (bframeTop_ == bframes_.size())
            bframes_.emplace_back();
        BFrame &f = bframes_[bframeTop_];
        f.fnIdx = fnIdx;
        f.retPc = retPc;
        f.callerDst = callerDst;
        f.callerKind = callerKind;
        f.savedSp = sp_;
        f.regs.assign(fn.numRegs, 0);
        if (mShadow<M>())
            f.rsh.assign(fn.numRegs, 0);
        if (mGround<M>())
            f.prov.assign(fn.numRegs, 0);
        f.objIds.clear();
        for (size_t i = 0; i < fn.frame.size(); i++) {
            const ir::FrameObject &obj = fn.frame[i];
            uint32_t rz = obj.redzone;
            sp_ = (sp_ + obj.align - 1) / obj.align * obj.align;
            sp_ += rz;
            sp_ = (sp_ + obj.align - 1) / obj.align * obj.align;
            uint64_t base = sp_;
            sp_ += std::max<uint64_t>(obj.size, 1) + rz;
            noteStackWrite(sp_);
            if (sp_ > kStackBase + kStackCapacity) {
                trap(TrapKind::StackOverflow, curLoc());
                return false;
            }
            uint64_t id = registerObject(base, obj.size,
                                         ObjectKind::Stack, obj.declId);
            f.objIds.push_back(id);
            std::memset(stack_.mem.data() + (base - stack_.base),
                        kFillByte, obj.size);
            if (mShadow<M>())
                setMsanShadow(base, obj.size, 1);
            if (rz) {
                setPoison(base - rz, rz, kPoisonStackRz);
                setPoison(base + obj.size, rz, kPoisonStackRz);
            }
        }
        for (uint32_t i = 0; i < fn.numParams && i < nArgs; i++) {
            uint64_t base = objects_[f.objIds[i] - 1].base;
            uint64_t size = fn.frame[i].size;
            std::memcpy(stack_.mem.data() + (base - kStackBase),
                        &scratchArgs_[i], size);
            if (mShadow<M>())
                setMsanShadow(base, size, scratchSh_[i]);
            if (mGround<M>() && scratchProv_[i] && size == 8)
                memProv_[base] = scratchProv_[i];
        }
        bframeTop_++;
        return true;
    }

    /** Pop the current bytecode frame. @return the caller resume pc
     *  (meaningless once done_). */
    template <Mode M>
    uint32_t
    bcPopFrame(uint64_t retValue, uint8_t retShadow, uint64_t retProv)
    {
        BFrame &f = bframes_[bframeTop_ - 1];
        unregisterFrameObjects(f.objIds);
        uint64_t lo = f.savedSp, hi = sp_;
        if (hi > lo) {
            setPoison(lo, hi - lo, kPoisonNone);
            if (mGround<M>()) {
                memProv_.erase(memProv_.lower_bound(lo),
                               memProv_.lower_bound(hi));
            }
        }
        sp_ = f.savedSp;
        uint32_t dst = f.callerDst;
        ScalarKind k = f.callerKind;
        uint32_t retPc = f.retPc;
        bframeTop_--;
        if (bframeTop_ == 0) {
            result_.exitCode =
                static_cast<int64_t>(canonical(retValue, k));
            done_ = true;
            return 0;
        }
        BFrame &caller = bframes_[bframeTop_ - 1];
        if (dst) {
            caller.regs[dst] = canonical(retValue, k);
            if (mShadow<M>())
                caller.rsh[dst] = retShadow;
            if (mGround<M>())
                caller.prov[dst] = retProv;
        }
        return retPc;
    }

    template <Mode M, bool AImm, bool BImm>
    void
    fastBin(const bc::BInst &bi, BFrame &f, uint32_t pc)
    {
        const bool sgn = bi.flags & bc::kOpSigned;
        const int bits = bi.bits;
        const uint64_t rawB = BImm ? bi.y : f.regs[bi.b];
        const uint64_t a =
            canonFast(AImm ? bi.x : f.regs[bi.a], bits, sgn);
        const uint64_t b = canonFast(rawB, bits, sgn);
        uint8_t shA = 0, shB = 0;
        if (mShadow<M>()) {
            if (!AImm)
                shA = f.rsh[bi.a];
            if (!BImm)
                shB = f.rsh[bi.b];
        }
        if (mGround<M>() && (bi.flags & bc::kOpIrFlag)) {
            if (sgn && (bi.flags & bc::kOpArith)) {
                __int128 wa = static_cast<int64_t>(a);
                __int128 wb = static_cast<int64_t>(b);
                __int128 r = bi.binOp == ir::BinOp::Add   ? wa + wb
                             : bi.binOp == ir::BinOp::Sub ? wa - wb
                                                          : wa * wb;
                __int128 lo = -(static_cast<__int128>(1) << (bits - 1));
                __int128 hi =
                    (static_cast<__int128>(1) << (bits - 1)) - 1;
                if (r < lo || r > hi) {
                    report(ReportKind::SignedIntegerOverflow,
                           bp_->locs[pc]);
                    return;
                }
            }
            if (bi.flags & bc::kOpShift) {
                int64_t count = static_cast<int64_t>(rawB);
                if (count < 0 || count >= bits) {
                    report(ReportKind::ShiftOutOfBounds, bp_->locs[pc]);
                    return;
                }
            }
            if (bi.flags & bc::kOpDivRem) {
                if (shA || shB) {
                    report(ReportKind::UninitValue, bp_->locs[pc]);
                    return;
                }
                if (b == 0) {
                    report(ReportKind::DivByZero, bp_->locs[pc]);
                    return;
                }
                if (sgn && bits >= 1) {
                    int64_t minv = bits >= 64 ? INT64_MIN
                                              : -(1LL << (bits - 1));
                    if (static_cast<int64_t>(a) == minv &&
                        static_cast<int64_t>(b) == -1) {
                        report(ReportKind::SignedIntegerOverflow,
                               bp_->locs[pc]);
                        return;
                    }
                }
            }
        }
        bool trapped = false;
        uint64_t r = evalBinFast(bi.binOp, bits, sgn, a, b, trapped);
        if (trapped) {
            trap(TrapKind::DivByZero, bp_->locs[pc]);
            return;
        }
        const bool isCmp = bi.flags & bc::kOpCmp;
        uint8_t sh = 0;
        if (mShadow<M>()) {
            sh = static_cast<uint8_t>(shA | shB);
            if (sh) {
                if (bp_->msan.bugSubConstDefined &&
                    bi.binOp == ir::BinOp::Sub)
                    sh = 0;
                else if (bp_->msan.bugAndDefined &&
                         bi.binOp == ir::BinOp::BitAnd)
                    sh = 0;
            }
        }
        f.regs[bi.dst] = isCmp ? (r ? 1 : 0) : canonFast(r, bits, sgn);
        if (mShadow<M>())
            f.rsh[bi.dst] = sh;
        if (mGround<M>()) {
            // Like the reference: the destination's provenance is
            // cleared first, then the operands' provenance is read.
            f.prov[bi.dst] = 0;
            if (!isCmp) {
                uint64_t pa = AImm ? 0 : f.prov[bi.a];
                uint64_t pb = BImm ? 0 : f.prov[bi.b];
                if ((pa != 0) != (pb != 0) && bi.dst)
                    f.prov[bi.dst] = pa ? pa : pb;
            }
        }
    }

    template <Mode M, bool AImm, bool BImm>
    void
    fastGep(const bc::BInst &bi, BFrame &f, uint32_t pc)
    {
        const uint64_t base = AImm ? bi.x : f.regs[bi.a];
        const int64_t idx =
            static_cast<int64_t>(BImm ? bi.y : f.regs[bi.b]);
        uint8_t shA = 0, shB = 0;
        if (mShadow<M>()) {
            if (!AImm)
                shA = f.rsh[bi.a];
            if (!BImm)
                shB = f.rsh[bi.b];
        }
        if (mGround<M>() && (shA || shB)) {
            report(ReportKind::UninitValue, bp_->locs[pc]);
            return;
        }
        const uint64_t addr =
            base +
            static_cast<uint64_t>(idx * static_cast<int64_t>(bi.imm));
        const uint64_t p = (mGround<M>() && !AImm) ? f.prov[bi.a] : 0;
        f.regs[bi.dst] = addr;
        if (mShadow<M>())
            f.rsh[bi.dst] = static_cast<uint8_t>(shA | shB);
        if (mGround<M>())
            f.prov[bi.dst] = bi.dst ? p : 0;
    }

    template <Mode M, bool AImm>
    void
    fastLoad(const bc::BInst &bi, BFrame &f, uint32_t pc)
    {
        const uint64_t addr = AImm ? bi.x : f.regs[bi.a];
        const uint64_t size = bi.imm;
        if (mGround<M>()) {
            if (!AImm && f.rsh[bi.a]) {
                report(ReportKind::UninitValue, bp_->locs[pc]);
                return;
            }
            if (preciseCheck(addr, size, bp_->locs[pc],
                             AImm ? 0 : f.prov[bi.a]))
                return;
        }
        if (addr < kNullGuard) {
            trap(TrapKind::Segfault, bp_->locs[pc]);
            return;
        }
        Segment *seg = segmentFor(addr, size);
        if (!seg) {
            trap(TrapKind::Segfault, bp_->locs[pc]);
            return;
        }
        const uint64_t raw =
            loadScalar(seg->mem.data() + (addr - seg->base), size);
        uint8_t sh = 0;
        if (mShadow<M>()) {
            for (uint64_t i = 0; i < size; i++)
                sh |= seg->msh[addr - seg->base + i];
        }
        f.regs[bi.dst] =
            canonFast(raw, bi.bits, bi.flags & bc::kOpSigned);
        if (mShadow<M>())
            f.rsh[bi.dst] = sh;
        if (mGround<M>()) {
            f.prov[bi.dst] = 0;
            if (size == 8) {
                auto it = memProv_.find(addr);
                if (it != memProv_.end() && bi.dst)
                    f.prov[bi.dst] = it->second;
            }
        }
    }

    template <Mode M, bool AImm, bool BImm>
    void
    fastStore(const bc::BInst &bi, BFrame &f, uint32_t pc)
    {
        const uint64_t addr = AImm ? bi.x : f.regs[bi.a];
        const uint64_t size = bi.imm;
        if (mGround<M>()) {
            if (!AImm && f.rsh[bi.a]) {
                report(ReportKind::UninitValue, bp_->locs[pc]);
                return;
            }
            if (preciseCheck(addr, size, bp_->locs[pc],
                             AImm ? 0 : f.prov[bi.a]))
                return;
        }
        if (addr < kNullGuard) {
            trap(TrapKind::Segfault, bp_->locs[pc]);
            return;
        }
        Segment *seg = segmentFor(addr, size);
        if (!seg) {
            trap(TrapKind::Segfault, bp_->locs[pc]);
            return;
        }
        uint64_t v = BImm ? bi.y : f.regs[bi.b];
        if (seg == &stack_)
            noteStackWrite(addr + size);
        storeScalar(seg->mem.data() + (addr - seg->base), v, size);
        if (mShadow<M>())
            setMsanShadow(addr, size, BImm ? 0 : f.rsh[bi.b]);
        if (mGround<M>()) {
            uint64_t p = BImm ? 0 : f.prov[bi.b];
            if (p && size == 8)
                memProv_[addr] = p;
            else
                memProv_.erase(addr);
        }
    }

    template <Mode M>
    void
    fastMemCopy(const bc::BInst &bi, BFrame &f, uint32_t pc)
    {
        const bool aImm = bi.flags & bc::kOpAImm;
        const bool bImm = bi.flags & bc::kOpBImm;
        const uint64_t dst = aImm ? bi.x : f.regs[bi.a];
        const uint64_t src = bImm ? bi.y : f.regs[bi.b];
        const uint64_t size = bi.imm;
        if (mGround<M>()) {
            if (preciseCheck(src, size, bp_->locs[pc],
                             bImm ? 0 : f.prov[bi.b]) ||
                preciseCheck(dst, size, bp_->locs[pc],
                             aImm ? 0 : f.prov[bi.a]))
                return;
        }
        if (dst < kNullGuard || src < kNullGuard) {
            trap(TrapKind::Segfault, bp_->locs[pc]);
            return;
        }
        Segment *sseg = segmentFor(src, size);
        Segment *dseg = segmentFor(dst, size);
        if (!sseg || !dseg) {
            trap(TrapKind::Segfault, bp_->locs[pc]);
            return;
        }
        if (dseg == &stack_)
            noteStackWrite(dst + size);
        std::memmove(dseg->mem.data() + (dst - dseg->base),
                     sseg->mem.data() + (src - sseg->base), size);
        if (mShadow<M>()) {
            std::memmove(dseg->msh.data() + (dst - dseg->base),
                         sseg->msh.data() + (src - sseg->base), size);
        }
        if (mGround<M>()) {
            memProv_.erase(memProv_.lower_bound(dst),
                           memProv_.lower_bound(dst + size));
            std::vector<std::pair<uint64_t, uint64_t>> moved;
            for (auto it = memProv_.lower_bound(src);
                 it != memProv_.end() && it->first < src + size; ++it)
                moved.emplace_back(it->first - src + dst, it->second);
            for (const auto &[a, p] : moved)
                memProv_[a] = p;
        }
    }

    /**
     * The dispatch loop proper. Handler bodies are written once and
     * compiled either as computed-goto labels (direct threading) or as
     * cases of a tight switch, selected by UBFUZZ_CGOTO. The label
     * table is generated from the same X-macro as the BOp enum, so the
     * orders cannot drift apart.
     */
    template <Mode M>
    void
    execProgram()
    {
        const bc::Program &p = *bp_;
        const bc::BInst *const code = p.code.data();
        const SourceLoc *const locs = p.locs.data();
        const uint64_t limit = opts_.stepLimit;
        uint64_t steps = 0;
        uint32_t curLocPc = kNoLocPc;
        uint32_t pc = 0;
        BFrame *f = nullptr;
        const bc::BInst *bi = nullptr;

        if (!bcPushFrame<M>(static_cast<uint32_t>(p.mainIndex), 0, 0,
                            ScalarKind::S32, 0, kNoLocPc)) {
            result_.steps = steps;
            return;
        }
        pc = p.functions[p.mainIndex].entryPc;
        f = &bframes_[bframeTop_ - 1];

// Generic-shape operand fetch (cold opcodes only).
#define VM_A() ((bi->flags & bc::kOpAImm) ? bi->x : f->regs[bi->a])
#define VM_B() ((bi->flags & bc::kOpBImm) ? bi->y : f->regs[bi->b])
#define VM_C() ((bi->flags & bc::kOpCImm) ? bi->imm : f->regs[bi->c])

#if UBFUZZ_CGOTO
        static const void *const tbl[] = {
#define UBFUZZ_BC_LABEL(name) &&H_##name,
            UBFUZZ_BC_OPS(UBFUZZ_BC_LABEL)
#undef UBFUZZ_BC_LABEL
        };
#define VM_CASE(name) H_##name
// Replicated dispatch: every handler ends with its *own* copy of the
// step preamble and indirect jump instead of funneling through one
// shared dispatch point. One jump site per handler lets the branch
// predictor learn per-opcode successor patterns — the classic
// direct-threading win on top of the label table itself.
#define VM_NEXT()                                                      \
    do {                                                               \
        if (done_)                                                     \
            goto vm_out;                                               \
        if (steps >= limit) {                                          \
            result_.kind = ExecResult::Kind::Timeout;                  \
            goto vm_out;                                               \
        }                                                              \
        bi = &code[pc];                                                \
        steps++;                                                       \
        if (bi->flags & bc::kOpLocValid)                               \
            curLocPc = pc;                                             \
        if (mTrace<M>())                                               \
            recordTrace(locs[pc]);                                     \
        if (mFault<M>() && steps == opts_.fault->step)                 \
            applyFault(f->regs, f->objIds,                             \
                       bp_->functions[f->fnIdx].frame);                \
        goto *tbl[static_cast<size_t>(bi->op)];                        \
    } while (0)
        VM_NEXT();
#else
#define VM_CASE(name) case bc::BOp::name
#define VM_NEXT() continue
        for (;;) {
            if (done_)
                break;
            if (steps >= limit) {
                result_.kind = ExecResult::Kind::Timeout;
                break;
            }
            bi = &code[pc];
            steps++;
            if (bi->flags & bc::kOpLocValid)
                curLocPc = pc;
            if (mTrace<M>())
                recordTrace(locs[pc]);
            if (mFault<M>() && steps == opts_.fault->step)
                applyFault(f->regs, f->objIds,
                           bp_->functions[f->fnIdx].frame);
            switch (bi->op) {
#endif

        VM_CASE(Nop) : { pc++; }
        VM_NEXT();

        VM_CASE(ConstK) : {
            f->regs[bi->dst] = bi->x;
            if (mShadow<M>())
                f->rsh[bi->dst] = 0;
            if (mGround<M>())
                f->prov[bi->dst] = 0;
            pc++;
        }
        VM_NEXT();

        VM_CASE(CastR) : {
            const uint64_t pr = mGround<M>() ? f->prov[bi->a] : 0;
            const uint8_t sh = mShadow<M>() ? f->rsh[bi->a] : 0;
            f->regs[bi->dst] = canonFast(f->regs[bi->a], bi->bits,
                                         bi->flags & bc::kOpSigned);
            if (mShadow<M>())
                f->rsh[bi->dst] = sh;
            if (mGround<M>())
                f->prov[bi->dst] = bi->dst ? pr : 0;
            pc++;
        }
        VM_NEXT();

        VM_CASE(CastI) : {
            f->regs[bi->dst] =
                canonFast(bi->x, bi->bits, bi->flags & bc::kOpSigned);
            if (mShadow<M>())
                f->rsh[bi->dst] = 0;
            if (mGround<M>())
                f->prov[bi->dst] = 0;
            pc++;
        }
        VM_NEXT();

        VM_CASE(Select) : {
            const bool cImm = bi->flags & bc::kOpCImm;
            const uint64_t cv = cImm ? bi->imm : f->regs[bi->c];
            const uint8_t cSh =
                (mShadow<M>() && !cImm) ? f->rsh[bi->c] : 0;
            const bool cond = cv != 0;
            const bool pickImm =
                cond ? (bi->flags & bc::kOpAImm) != 0
                     : (bi->flags & bc::kOpBImm) != 0;
            const uint32_t pickReg = cond ? bi->a : bi->b;
            const uint64_t v =
                pickImm ? (cond ? bi->x : bi->y) : f->regs[pickReg];
            const uint8_t sh =
                (mShadow<M>() && !pickImm) ? f->rsh[pickReg] : 0;
            const uint64_t pr =
                (mGround<M>() && !pickImm) ? f->prov[pickReg] : 0;
            f->regs[bi->dst] =
                canonFast(v, bi->bits, bi->flags & bc::kOpSigned);
            if (mShadow<M>())
                f->rsh[bi->dst] = static_cast<uint8_t>(sh | cSh);
            if (mGround<M>())
                f->prov[bi->dst] = bi->dst ? pr : 0;
            pc++;
        }
        VM_NEXT();

        VM_CASE(BinRR) : {
            fastBin<M, false, false>(*bi, *f, pc);
            pc++;
        }
        VM_NEXT();
        VM_CASE(BinRI) : {
            fastBin<M, false, true>(*bi, *f, pc);
            pc++;
        }
        VM_NEXT();
        VM_CASE(BinIR) : {
            fastBin<M, true, false>(*bi, *f, pc);
            pc++;
        }
        VM_NEXT();
        VM_CASE(BinII) : {
            fastBin<M, true, true>(*bi, *f, pc);
            pc++;
        }
        VM_NEXT();

        VM_CASE(FrameAddr) : {
            const uint64_t id = f->objIds[bi->t0];
            f->regs[bi->dst] = objects_[id - 1].base;
            if (mShadow<M>())
                f->rsh[bi->dst] = 0;
            if (mGround<M>())
                f->prov[bi->dst] = bi->dst ? id : 0;
            pc++;
        }
        VM_NEXT();

        VM_CASE(GlobalAddr) : {
            f->regs[bi->dst] = globalAddrs_[bi->t0];
            if (mShadow<M>())
                f->rsh[bi->dst] = 0;
            if (mGround<M>())
                f->prov[bi->dst] = bi->dst ? globalObjIds_[bi->t0] : 0;
            pc++;
        }
        VM_NEXT();

        VM_CASE(GepRR) : {
            fastGep<M, false, false>(*bi, *f, pc);
            pc++;
        }
        VM_NEXT();
        VM_CASE(GepRI) : {
            fastGep<M, false, true>(*bi, *f, pc);
            pc++;
        }
        VM_NEXT();
        VM_CASE(GepIR) : {
            fastGep<M, true, false>(*bi, *f, pc);
            pc++;
        }
        VM_NEXT();
        VM_CASE(GepII) : {
            fastGep<M, true, true>(*bi, *f, pc);
            pc++;
        }
        VM_NEXT();

        VM_CASE(LoadR) : {
            fastLoad<M, false>(*bi, *f, pc);
            pc++;
        }
        VM_NEXT();
        VM_CASE(LoadI) : {
            fastLoad<M, true>(*bi, *f, pc);
            pc++;
        }
        VM_NEXT();

        VM_CASE(StoreRR) : {
            fastStore<M, false, false>(*bi, *f, pc);
            pc++;
        }
        VM_NEXT();
        VM_CASE(StoreRI) : {
            fastStore<M, false, true>(*bi, *f, pc);
            pc++;
        }
        VM_NEXT();
        VM_CASE(StoreIR) : {
            fastStore<M, true, false>(*bi, *f, pc);
            pc++;
        }
        VM_NEXT();
        VM_CASE(StoreII) : {
            fastStore<M, true, true>(*bi, *f, pc);
            pc++;
        }
        VM_NEXT();

        VM_CASE(MemCopy) : {
            fastMemCopy<M>(*bi, *f, pc);
            pc++;
        }
        VM_NEXT();

        VM_CASE(Br) : { pc = bi->t0; }
        VM_NEXT();

        VM_CASE(CondBrR) : {
            if (mGround<M>() && f->rsh[bi->a]) {
                report(ReportKind::UninitValue, locs[pc]);
                VM_NEXT();
            }
            pc = f->regs[bi->a] != 0 ? bi->t0 : bi->t1;
        }
        VM_NEXT();

        VM_CASE(CondBrI) : { pc = bi->x != 0 ? bi->t0 : bi->t1; }
        VM_NEXT();

        VM_CASE(RetVoid) : {
            pc = bcPopFrame<M>(0, 0, 0);
            if (bframeTop_)
                f = &bframes_[bframeTop_ - 1];
        }
        VM_NEXT();

        VM_CASE(RetR) : {
            const uint64_t rv = f->regs[bi->a];
            const uint8_t sh = mShadow<M>() ? f->rsh[bi->a] : 0;
            const uint64_t pr = mGround<M>() ? f->prov[bi->a] : 0;
            pc = bcPopFrame<M>(rv, sh, pr);
            if (bframeTop_)
                f = &bframes_[bframeTop_ - 1];
        }
        VM_NEXT();

        VM_CASE(RetI) : {
            pc = bcPopFrame<M>(bi->x, 0, 0);
            if (bframeTop_)
                f = &bframes_[bframeTop_ - 1];
        }
        VM_NEXT();

        VM_CASE(Call) : {
            const uint32_t n = bi->t1;
            scratchArgs_.clear();
            scratchSh_.clear();
            scratchProv_.clear();
            const bc::BArg *args = bp_->argPool.data() + bi->t0;
            for (uint32_t i = 0; i < n; i++) {
                const bc::BArg &arg = args[i];
                if (arg.isImm) {
                    scratchArgs_.push_back(arg.imm);
                    scratchSh_.push_back(0);
                    scratchProv_.push_back(0);
                } else {
                    scratchArgs_.push_back(f->regs[arg.reg]);
                    scratchSh_.push_back(mShadow<M>() ? f->rsh[arg.reg]
                                                      : 0);
                    scratchProv_.push_back(
                        mGround<M>() ? f->prov[arg.reg] : 0);
                }
            }
            if (bcPushFrame<M>(bi->a, n, bi->dst, bi->kind, pc + 1,
                               curLocPc)) {
                f = &bframes_[bframeTop_ - 1];
                pc = bp_->functions[bi->a].entryPc;
            }
        }
        VM_NEXT();

        VM_CASE(Malloc) : {
            const uint64_t size = std::max<uint64_t>(VM_A(), 1);
            const uint32_t rz = bp_->asanHeap ? kHeapRedzone : 0;
            uint64_t off = heap_.mem.size();
            off = (off + 15) / 16 * 16;
            const uint64_t total = rz + size + rz;
            if (off + total > kHeapCapacity) {
                trap(TrapKind::OutOfMemory, locs[pc]);
                VM_NEXT();
            }
            heap_.grow(off + total);
            const uint64_t base = kHeapBase + off + rz;
            const uint64_t id =
                registerObject(base, size, ObjectKind::Heap, 0);
            if (mShadow<M>())
                setMsanShadow(base, size, 1);
            if (rz) {
                setPoison(base - rz, rz, kPoisonHeapRz);
                setPoison(base + size, rz, kPoisonHeapRz);
            }
            if (mProfile<M>()) {
                opts_.profile->heapAllocs.push_back(
                    {id, base, size, ++opts_.profile->eventSeq, 0});
            }
            f->regs[bi->dst] = base;
            if (mShadow<M>())
                f->rsh[bi->dst] = 0;
            if (mGround<M>())
                f->prov[bi->dst] = bi->dst ? id : 0;
            pc++;
        }
        VM_NEXT();

        VM_CASE(Free) : {
            const uint64_t addr = VM_A();
            if (addr == 0) { // free(NULL) is a no-op
                pc++;
                VM_NEXT();
            }
            auto it = byBase_.find(addr);
            Object *obj =
                it == byBase_.end() ? nullptr : objectById(it->second);
            if (!obj || obj->kind != ObjectKind::Heap ||
                obj->state != ObjectState::Live) {
                trap(TrapKind::InvalidFree, locs[pc]);
                VM_NEXT();
            }
            obj->state = ObjectState::Freed;
            if (bp_->asanHeap)
                setPoison(obj->base, obj->size, kPoisonFreed);
            if (mProfile<M>()) {
                for (auto &rec : opts_.profile->heapAllocs) {
                    if (rec.objectId == obj->id && rec.freeSeq == 0)
                        rec.freeSeq = ++opts_.profile->eventSeq;
                }
            }
            pc++;
        }
        VM_NEXT();

        VM_CASE(ChecksumR) : {
            const uint64_t v = f->regs[bi->a];
            if (mGround<M>() && f->rsh[bi->a]) {
                report(ReportKind::UninitValue, locs[pc]);
                VM_NEXT();
            }
            result_.checksum = (result_.checksum ^ v) * 0x100000001b3ULL;
            pc++;
        }
        VM_NEXT();

        VM_CASE(ChecksumI) : {
            result_.checksum =
                (result_.checksum ^ bi->x) * 0x100000001b3ULL;
            pc++;
        }
        VM_NEXT();

        VM_CASE(LogVal) : {
            if (mProfile<M>()) {
                opts_.profile->values[VM_A()].push_back(
                    static_cast<int64_t>(VM_B()));
            }
            pc++;
        }
        VM_NEXT();

        VM_CASE(LogPtr) : {
            if (mProfile<M>()) {
                PtrRecord rec;
                rec.address = VM_B();
                if (Object *obj = resolveObject(rec.address)) {
                    if (rec.address < obj->base + obj->size) {
                        rec.objectId = obj->id;
                        rec.objectBase = obj->base;
                        rec.objectSize = obj->size;
                        rec.objectKind = obj->kind;
                        rec.objectState = obj->state;
                    }
                }
                opts_.profile->pointers[VM_A()].push_back(rec);
            }
            pc++;
        }
        VM_NEXT();

        VM_CASE(LogBuf) : {
            if (mProfile<M>()) {
                BufRecord rec;
                rec.address = VM_B();
                rec.size = VM_C();
                if (Object *obj = resolveObject(rec.address)) {
                    rec.objectId = obj->id;
                    rec.objectKind = obj->kind;
                }
                opts_.profile->buffers[VM_A()].push_back(rec);
            }
            pc++;
        }
        VM_NEXT();

        VM_CASE(LogScopeEnter) : {
            if (mProfile<M>()) {
                opts_.profile->scopes.push_back(
                    {VM_A(), true, ++opts_.profile->eventSeq});
            }
            pc++;
        }
        VM_NEXT();

        VM_CASE(LogScopeExit) : {
            if (mProfile<M>()) {
                opts_.profile->scopes.push_back(
                    {VM_A(), false, ++opts_.profile->eventSeq});
            }
            pc++;
        }
        VM_NEXT();

        VM_CASE(LifetimeStart) : {
            Object &obj = objects_[f->objIds[bi->t0] - 1];
            obj.state = ObjectState::Live;
            setPoison(obj.base, obj.size, kPoisonNone);
            if (mShadow<M>())
                setMsanShadow(obj.base, obj.size, 1);
            std::memset(stack_.mem.data() + (obj.base - stack_.base),
                        kFillByte, obj.size);
            pc++;
        }
        VM_NEXT();

        VM_CASE(LifetimeEnd) : {
            Object &obj = objects_[f->objIds[bi->t0] - 1];
            obj.state = ObjectState::ScopeEnded;
            if (bp_->functions[f->fnIdx].frame[bi->t0].redzone)
                setPoison(obj.base, obj.size, kPoisonScope);
            pc++;
        }
        VM_NEXT();

        VM_CASE(AsanCheck) : {
            const uint64_t addr = VM_A();
            const uint64_t size = bi->imm;
            Segment *seg = segmentFor(addr, size);
            if (seg) {
                ReportKind kind = ReportKind::None;
                for (uint64_t i = 0; i < size; i++) {
                    uint8_t codeByte = seg->poison[addr - seg->base + i];
                    if (codeByte == kPoisonNone)
                        continue;
                    switch (codeByte) {
                      case kPoisonStackRz:
                        kind = ReportKind::StackBufferOverflow;
                        break;
                      case kPoisonGlobalRz:
                        kind = ReportKind::GlobalBufferOverflow;
                        break;
                      case kPoisonHeapRz:
                        kind = ReportKind::HeapBufferOverflow;
                        break;
                      case kPoisonFreed:
                        kind = ReportKind::HeapUseAfterFree;
                        break;
                      default:
                        kind = ReportKind::StackUseAfterScope;
                        break;
                    }
                    break;
                }
                if (kind != ReportKind::None) {
                    report(kind, locs[pc]);
                    VM_NEXT();
                }
            }
            pc++;
        }
        VM_NEXT();

        VM_CASE(UbsanArith) : {
            if (!(bi->flags & bc::kOpSigned)) {
                pc++;
                VM_NEXT();
            }
            const int bits = bi->bits;
            __int128 a = static_cast<int64_t>(
                canonFast(VM_A(), bits, true));
            __int128 b = static_cast<int64_t>(
                canonFast(VM_B(), bits, true));
            __int128 r = bi->binOp == ir::BinOp::Add   ? a + b
                         : bi->binOp == ir::BinOp::Sub ? a - b
                                                       : a * b;
            __int128 lo = -(static_cast<__int128>(1) << (bits - 1));
            __int128 hi = (static_cast<__int128>(1) << (bits - 1)) - 1;
            if (r < lo || r > hi) {
                report(ReportKind::SignedIntegerOverflow, locs[pc]);
                VM_NEXT();
            }
            pc++;
        }
        VM_NEXT();

        VM_CASE(UbsanShift) : {
            const int64_t count = static_cast<int64_t>(VM_B());
            // flag = "negative counts only" (an injected check bug).
            const bool bad =
                (bi->flags & bc::kOpIrFlag)
                    ? count < 0
                    : (count < 0 ||
                       count >= static_cast<int64_t>(bi->bits));
            if (bad) {
                report(ReportKind::ShiftOutOfBounds, locs[pc]);
                VM_NEXT();
            }
            pc++;
        }
        VM_NEXT();

        VM_CASE(UbsanDiv) : {
            const bool sgn = bi->flags & bc::kOpSigned;
            const uint64_t b = VM_B();
            if (canonFast(b, bi->bits, sgn) == 0) {
                report(ReportKind::DivByZero, locs[pc]);
                VM_NEXT();
            }
            if (sgn) {
                const int bits = bi->bits;
                const int64_t minv =
                    bits >= 64 ? INT64_MIN : -(1LL << (bits - 1));
                if (static_cast<int64_t>(VM_A()) == minv &&
                    static_cast<int64_t>(canonFast(b, bits, sgn)) ==
                        -1) {
                    report(ReportKind::SignedIntegerOverflow, locs[pc]);
                    VM_NEXT();
                }
            }
            pc++;
        }
        VM_NEXT();

        VM_CASE(UbsanNull) : {
            if (VM_A() == 0) {
                report(ReportKind::NullDeref, locs[pc]);
                VM_NEXT();
            }
            pc++;
        }
        VM_NEXT();

        VM_CASE(UbsanBounds) : {
            const int64_t idx = static_cast<int64_t>(VM_A());
            if (idx < 0 || static_cast<uint64_t>(idx) >= bi->imm) {
                report(ReportKind::ArrayIndexOOB, locs[pc]);
                VM_NEXT();
            }
            pc++;
        }
        VM_NEXT();

        VM_CASE(MsanCheck) : {
            const uint8_t sh =
                (mShadow<M>() && !(bi->flags & bc::kOpAImm))
                    ? f->rsh[bi->a]
                    : 0;
            if (bp_->msan.enabled && sh) {
                report(ReportKind::UninitValue, locs[pc]);
                VM_NEXT();
            }
            pc++;
        }
        VM_NEXT();

        VM_CASE(HardenCheck) : {
            // Armed only while a fault plan is in effect (see the
            // reference interpreter's arm for why).
            if (mFault<M>() && VM_A() != VM_B()) {
                report(ReportKind::HardeningFault, locs[pc]);
                VM_NEXT();
            }
            pc++;
        }
        VM_NEXT();

// Superinstruction handlers: one dispatch retires two adjacent records
// (the fusion pass rewrote the first record's op; the second is still
// in place at pc+1). Each half executes verbatim — same helpers, same
// register writes, same trap/report sites — and VM_FUSE_SECOND()
// replicates the dispatch preamble between them, so a run that ends or
// times out mid-pair is indistinguishable from the unfused execution:
// ending the run leaves pc untouched, and an exhausted step budget
// bails *before* the second half's step/loc/trace bookkeeping so the
// preamble re-detects it and reports Timeout at exactly the step the
// reference interpreter would.
#define VM_FUSE_SECOND()                                               \
    if (done_)                                                         \
        VM_NEXT();                                                     \
    pc++;                                                              \
    if (steps >= limit)                                                \
        VM_NEXT();                                                     \
    bi++;                                                              \
    steps++;                                                           \
    if (bi->flags & bc::kOpLocValid)                                   \
        curLocPc = pc;                                                 \
    if (mTrace<M>())                                                   \
        recordTrace(locs[pc])

// Cmp+CondBr: the shape suffix is the compare's; the branch half is
// always CondBrR on the compare's dst (its body mirrors VM_CASE(CondBrR)).
#define VM_FUSED_CMP_BR(name, AImm, BImm)                              \
    VM_CASE(name) : {                                                  \
        fastBin<M, AImm, BImm>(*bi, *f, pc);                           \
        VM_FUSE_SECOND();                                              \
        if (mGround<M>() && f->rsh[bi->a]) {                           \
            report(ReportKind::UninitValue, locs[pc]);                 \
            VM_NEXT();                                                 \
        }                                                              \
        pc = f->regs[bi->a] != 0 ? bi->t0 : bi->t1;                    \
    }                                                                  \
    VM_NEXT()

        VM_FUSED_CMP_BR(FCmpBrRR, false, false);
        VM_FUSED_CMP_BR(FCmpBrRI, false, true);
        VM_FUSED_CMP_BR(FCmpBrIR, true, false);
        VM_FUSED_CMP_BR(FCmpBrII, true, true);

// Load+Bin: the shape suffix is the Bin's; the load half is always
// LoadR feeding one of the Bin's register operands.
#define VM_FUSED_LOAD_BIN(name, AImm, BImm)                            \
    VM_CASE(name) : {                                                  \
        fastLoad<M, false>(*bi, *f, pc);                               \
        VM_FUSE_SECOND();                                              \
        fastBin<M, AImm, BImm>(*bi, *f, pc);                           \
        pc++;                                                          \
    }                                                                  \
    VM_NEXT()

        VM_FUSED_LOAD_BIN(FLoadBinRR, false, false);
        VM_FUSED_LOAD_BIN(FLoadBinRI, false, true);
        VM_FUSED_LOAD_BIN(FLoadBinIR, true, false);
        VM_FUSED_LOAD_BIN(FLoadBinII, true, true);

// Bin+Store: the shape suffix is the Bin's; the store half is always
// StoreRR storing the Bin's dst.
#define VM_FUSED_BIN_STORE(name, AImm, BImm)                           \
    VM_CASE(name) : {                                                  \
        fastBin<M, AImm, BImm>(*bi, *f, pc);                           \
        VM_FUSE_SECOND();                                              \
        fastStore<M, false, false>(*bi, *f, pc);                       \
        pc++;                                                          \
    }                                                                  \
    VM_NEXT()

        VM_FUSED_BIN_STORE(FBinStoreRR, false, false);
        VM_FUSED_BIN_STORE(FBinStoreRI, false, true);
        VM_FUSED_BIN_STORE(FBinStoreIR, true, false);
        VM_FUSED_BIN_STORE(FBinStoreII, true, true);

// Gep+Load: the shape suffix is the Gep's; the load half is always
// LoadR from the Gep's dst.
#define VM_FUSED_GEP_LOAD(name, AImm, BImm)                            \
    VM_CASE(name) : {                                                  \
        fastGep<M, AImm, BImm>(*bi, *f, pc);                           \
        VM_FUSE_SECOND();                                              \
        fastLoad<M, false>(*bi, *f, pc);                               \
        pc++;                                                          \
    }                                                                  \
    VM_NEXT()

        VM_FUSED_GEP_LOAD(FGepLoadRR, false, false);
        VM_FUSED_GEP_LOAD(FGepLoadRI, false, true);
        VM_FUSED_GEP_LOAD(FGepLoadIR, true, false);
        VM_FUSED_GEP_LOAD(FGepLoadII, true, true);

// FrameAddr+Load / FrameAddr+Store: the address half mirrors
// VM_CASE(FrameAddr) (it can never end the run); the access half is
// always through the frame address register.
#define VM_FRAME_ADDR_HALF()                                           \
    const uint64_t faId = f->objIds[bi->t0];                           \
    f->regs[bi->dst] = objects_[faId - 1].base;                        \
    if (mShadow<M>())                                                  \
        f->rsh[bi->dst] = 0;                                           \
    if (mGround<M>())                                                  \
        f->prov[bi->dst] = bi->dst ? faId : 0

        VM_CASE(FFrameAddrLoad) : {
            VM_FRAME_ADDR_HALF();
            VM_FUSE_SECOND();
            fastLoad<M, false>(*bi, *f, pc);
            pc++;
        }
        VM_NEXT();

        VM_CASE(FFrameAddrStoreR) : {
            VM_FRAME_ADDR_HALF();
            VM_FUSE_SECOND();
            fastStore<M, false, false>(*bi, *f, pc);
            pc++;
        }
        VM_NEXT();

        VM_CASE(FFrameAddrStoreI) : {
            VM_FRAME_ADDR_HALF();
            VM_FUSE_SECOND();
            fastStore<M, false, true>(*bi, *f, pc);
            pc++;
        }
        VM_NEXT();

#if UBFUZZ_CGOTO
    vm_out:;
#else
            }
        }
#endif
        result_.steps = steps;

#undef VM_FRAME_ADDR_HALF
#undef VM_FUSE_SECOND
#undef VM_FUSED_CMP_BR
#undef VM_FUSED_LOAD_BIN
#undef VM_FUSED_BIN_STORE
#undef VM_FUSED_GEP_LOAD
#undef VM_CASE
#undef VM_NEXT
#undef VM_A
#undef VM_B
#undef VM_C
    }

    /** The module of the current reference run; bound by
     *  runReference(). */
    const ir::Module *m_ = nullptr;
    /** The translation of the current bytecode run. */
    const bc::Program *bp_ = nullptr;
    /** The translation cache: shared (campaign unit) or private. */
    CodeCache *cache_ = nullptr;
    CodeCache ownCache_;
    /** Bytecode frame pool; live frames are [0, bframeTop_). */
    std::vector<BFrame> bframes_;
    size_t bframeTop_ = 0;
    /** Call-argument marshaling scratch (reused across calls). */
    std::vector<uint64_t> scratchArgs_;
    std::vector<uint8_t> scratchSh_;
    std::vector<uint64_t> scratchProv_;
    ExecOptions opts_;
    Segment globals_, stack_, heap_;
    std::vector<Object> objects_;
    /** base -> id for global and heap objects. Stack objects live in
     *  stackObjs_ instead: frame push/pop is the hottest allocation
     *  path and obeys strict LIFO, so a sorted vector replaces the
     *  per-call tree-node churn a shared map would cost. */
    std::map<uint64_t, uint64_t> byBase_;
    /** (base, id) of live stack objects, ascending by base. Pushes
     *  append (sp_ only grows within a frame chain) and pops remove a
     *  suffix, so the vector stays sorted without ever rebalancing. */
    std::vector<std::pair<uint64_t, uint64_t>> stackObjs_;
    uint64_t nextObjectId_ = 1;
    bool trackShadow_ = false;
    ExecResult result_;
    bool done_ = false;
    /** Has any nonzero poison code been written this run? While false,
     *  the poison planes are all-clear and clearing writes are no-ops. */
    bool poisonDirty_ = false;
    /** Has a run dirtied the arenas since the last reset()? */
    bool dirty_ = false;
    /** End offset of the highest stack byte written this run. */
    uint64_t stackDirty_ = 0;
    ExecStats stats_;
};

Machine::Machine(CodeCache *cache) : impl_(std::make_unique<Impl>(cache))
{
}
Machine::~Machine() = default;
Machine::Machine(Machine &&) noexcept = default;
Machine &Machine::operator=(Machine &&) noexcept = default;

ExecResult
Machine::run(const ir::Module &module, const ExecOptions &opts,
             const ir::BinaryKey *key)
{
    return impl_->run(module, opts, key);
}

ExecResult
Machine::runReference(const ir::Module &module, const ExecOptions &opts)
{
    return impl_->runReference(module, opts);
}

void
Machine::reset()
{
    impl_->reset();
}

const ExecStats &
Machine::stats() const
{
    return impl_->stats_;
}

void
Machine::noteDedupSkip()
{
    impl_->stats_.dedupSkips++;
}

ExecResult
execute(const ir::Module &module, const ExecOptions &opts)
{
    return Machine().run(module, opts);
}

} // namespace ubfuzz::vm
