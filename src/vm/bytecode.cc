#include "vm/bytecode.h"

#include "support/diagnostics.h"

namespace ubfuzz::vm {

namespace bc {

using ir::Inst;
using ir::Opcode;
using ir::Value;

bool
opcodeHasHandler(ir::Opcode op)
{
    switch (op) {
      case Opcode::Nop:
      case Opcode::Const:
      case Opcode::Bin:
      case Opcode::Cast:
      case Opcode::Select:
      case Opcode::FrameAddr:
      case Opcode::GlobalAddr:
      case Opcode::Gep:
      case Opcode::Load:
      case Opcode::Store:
      case Opcode::MemCopy:
      case Opcode::Br:
      case Opcode::CondBr:
      case Opcode::Ret:
      case Opcode::Call:
      case Opcode::Malloc:
      case Opcode::Free:
      case Opcode::Checksum:
      case Opcode::LogVal:
      case Opcode::LogPtr:
      case Opcode::LogBuf:
      case Opcode::LogScopeEnter:
      case Opcode::LogScopeExit:
      case Opcode::LifetimeStart:
      case Opcode::LifetimeEnd:
      case Opcode::AsanCheck:
      case Opcode::UbsanArith:
      case Opcode::UbsanShift:
      case Opcode::UbsanDiv:
      case Opcode::UbsanNull:
      case Opcode::UbsanBounds:
      case Opcode::MsanCheck:
      case Opcode::HardenCheck:
        return true;
      default:
        // An opcode added to the IR without a flattener handler lands
        // here: translation panics (see translate) and the
        // exhaustiveness test fails until a handler exists.
        return false;
    }
}

namespace {

/** Pick the reg/imm-specialized opcode for a two-operand shape. */
BOp
shape2(const Value &a, const Value &b, BOp rr, BOp ri, BOp ir, BOp ii)
{
    if (a.isImm())
        return b.isImm() ? ii : ir;
    return b.isImm() ? ri : rr;
}

/** Offset of @p op inside the four-opcode RR/RI/IR/II group anchored
 *  at @p rr (0..3), or -1 when it is outside the group. Relies on the
 *  X-macro keeping each shape group contiguous. */
int
shapeIndex(BOp op, BOp rr)
{
    const int d = static_cast<int>(op) - static_cast<int>(rr);
    return d >= 0 && d < 4 ? d : -1;
}

/** Does the Bin record @p b read register @p reg? */
bool
binReadsReg(const BInst &b, uint32_t reg)
{
    return (!(b.flags & kOpAImm) && b.a == reg) ||
           (!(b.flags & kOpBImm) && b.b == reg);
}

/** The opcode @p rr's group member at shape offset @p idx. */
BOp
shapeAt(BOp rr, int idx)
{
    return static_cast<BOp>(static_cast<int>(rr) + idx);
}

/**
 * The kTierFused peephole: greedily rewrite hot adjacent record pairs
 * into superinstructions. Only the first record's op changes — the
 * second stays in place, so pcs, branch targets, and the loc table are
 * untouched and the fused handler can read both records.
 *
 * Guards, in order:
 *  - the second record must not be a jump-in point (function entry,
 *    branch target, or call return site) — a transfer landing there
 *    must still execute it as a plain step;
 *  - the pair must be producer→consumer (the second reads the first's
 *    dst), which also implies the first is not a terminator, so both
 *    records sit in the same basic block by construction (blocks
 *    always end in terminators — there is no fall-through).
 *
 * @return the number of superinstruction records produced.
 */
uint32_t
fusePairs(Program &p)
{
    const size_t n = p.code.size();
    std::vector<bool> jumpIn(n, false);
    for (const BFunction &fn : p.functions) {
        if (fn.entryPc < n)
            jumpIn[fn.entryPc] = true;
    }
    for (size_t i = 0; i < n; i++) {
        const BInst &bi = p.code[i];
        switch (bi.op) {
          case BOp::Br:
            jumpIn[bi.t0] = true;
            break;
          case BOp::CondBrR:
          case BOp::CondBrI:
            jumpIn[bi.t0] = true;
            jumpIn[bi.t1] = true;
            break;
          case BOp::Call:
            if (i + 1 < n)
                jumpIn[i + 1] = true; // the return site
            break;
          default:
            break;
        }
    }

    uint32_t fused = 0;
    for (size_t i = 0; i + 1 < n; i++) {
        if (jumpIn[i + 1])
            continue;
        BInst &a = p.code[i];
        const BInst &b = p.code[i + 1];
        const int binA = shapeIndex(a.op, BOp::BinRR);
        const int gepA = shapeIndex(a.op, BOp::GepRR);
        const int binB = shapeIndex(b.op, BOp::BinRR);
        BOp fusedOp = a.op;
        if (binA >= 0 && (a.flags & kOpCmp) && b.op == BOp::CondBrR &&
            b.a == a.dst) {
            fusedOp = shapeAt(BOp::FCmpBrRR, binA);
        } else if (binA >= 0 && b.op == BOp::StoreRR && b.b == a.dst) {
            fusedOp = shapeAt(BOp::FBinStoreRR, binA);
        } else if (a.op == BOp::LoadR && binB >= 0 &&
                   binReadsReg(b, a.dst)) {
            // Prefer the branch fusion: when the consumer is a compare
            // that would itself fuse with a following CondBrR, leave
            // the load alone so the cmp+branch pair (which also
            // removes the branch-side dispatch) can form.
            const bool cmpBrNext =
                (b.flags & kOpCmp) && i + 2 < n && !jumpIn[i + 2] &&
                p.code[i + 2].op == BOp::CondBrR &&
                p.code[i + 2].a == b.dst;
            if (!cmpBrNext)
                fusedOp = shapeAt(BOp::FLoadBinRR, binB);
        } else if (gepA >= 0 && b.op == BOp::LoadR && b.a == a.dst) {
            fusedOp = shapeAt(BOp::FGepLoadRR, gepA);
        } else if (a.op == BOp::FrameAddr) {
            // Frame-slot access is the hottest pair of all in lowered
            // code: nearly every local read or write is FrameAddr
            // followed by the Load/Store through its address.
            if (b.op == BOp::LoadR && b.a == a.dst)
                fusedOp = BOp::FFrameAddrLoad;
            else if (b.op == BOp::StoreRR && b.a == a.dst)
                fusedOp = BOp::FFrameAddrStoreR;
            else if (b.op == BOp::StoreRI && b.a == a.dst)
                fusedOp = BOp::FFrameAddrStoreI;
        }
        if (fusedOp != a.op) {
            a.op = fusedOp;
            fused++;
            i++; // the second record is consumed — never fuse it again
        }
    }
    return fused;
}

} // namespace

Program
translate(const ir::Module &m, uint32_t tier)
{
    UBF_ASSERT(m.mainIndex >= 0, "translating a module without main");
    Program p;
    p.mainIndex = m.mainIndex;
    p.asanGlobals = m.asanGlobals;
    p.asanHeap = m.asanHeap;
    p.msan = m.msan;
    p.globals = m.globals;

    // Pass 1: lay out the flat pc space — functions in order, each
    // function's blocks in order — so branch targets and call entries
    // resolve to absolute pcs.
    std::vector<std::vector<uint32_t>> blockStart(m.functions.size());
    uint32_t pc = 0;
    p.functions.reserve(m.functions.size());
    for (size_t fi = 0; fi < m.functions.size(); fi++) {
        const ir::Function &fn = m.functions[fi];
        BFunction bf;
        bf.entryPc = pc;
        bf.numRegs = fn.numRegs;
        bf.numParams = fn.numParams;
        bf.frame = fn.frame;
        p.functions.push_back(std::move(bf));
        blockStart[fi].reserve(fn.blocks.size());
        for (const ir::BasicBlock &bb : fn.blocks) {
            blockStart[fi].push_back(pc);
            pc += static_cast<uint32_t>(bb.insts.size());
        }
    }
    p.code.reserve(pc);
    p.locs.reserve(pc);

    // Pass 2: translate every instruction into one fixed-size record.
    for (size_t fi = 0; fi < m.functions.size(); fi++) {
        const ir::Function &fn = m.functions[fi];
        for (const ir::BasicBlock &bb : fn.blocks) {
            for (const Inst &inst : bb.insts) {
                if (!opcodeHasHandler(inst.op)) {
                    UBF_PANIC("no bytecode handler for opcode #",
                              static_cast<int>(inst.op));
                }
                BInst bi;
                bi.kind = inst.kind;
                bi.binOp = inst.binOp;
                bi.bits = static_cast<uint8_t>(ast::scalarBits(inst.kind));
                bi.dst = inst.dst;
                bi.imm = inst.imm;
                if (inst.flag)
                    bi.flags |= kOpIrFlag;
                if (inst.loc.isValid())
                    bi.flags |= kOpLocValid;
                if (ast::scalarSigned(inst.kind))
                    bi.flags |= kOpSigned;
                if (ast::isComparisonOp(inst.binOp))
                    bi.flags |= kOpCmp;
                if (ast::isArithOp(inst.binOp))
                    bi.flags |= kOpArith;
                if (ast::isShiftOp(inst.binOp))
                    bi.flags |= kOpShift;
                if (ast::isDivRemOp(inst.binOp))
                    bi.flags |= kOpDivRem;

                // Operand pre-decoding for shape-generic opcodes:
                // immediates move into the record (a -> x, b -> y,
                // c -> imm), registers keep their id.
                auto opA = [&bi](const Value &v) {
                    if (v.isImm()) {
                        bi.flags |= kOpAImm;
                        bi.x = v.imm;
                    } else {
                        bi.a = v.reg;
                    }
                };
                auto opB = [&bi](const Value &v) {
                    if (v.isImm()) {
                        bi.flags |= kOpBImm;
                        bi.y = v.imm;
                    } else {
                        bi.b = v.reg;
                    }
                };
                auto opC = [&bi](const Value &v) {
                    if (v.isImm()) {
                        bi.flags |= kOpCImm;
                        bi.imm = v.imm;
                    } else {
                        bi.c = v.reg;
                    }
                };

                switch (inst.op) {
                  case Opcode::Nop:
                    bi.op = BOp::Nop;
                    break;
                  case Opcode::Const:
                    bi.op = BOp::ConstK;
                    // The only canonicalization the reference applies
                    // to a Const happens at translation time.
                    bi.x = ir::canonicalValue(inst.imm, inst.kind);
                    break;
                  case Opcode::Cast:
                    bi.op = inst.a.isImm() ? BOp::CastI : BOp::CastR;
                    opA(inst.a);
                    break;
                  case Opcode::Select:
                    bi.op = BOp::Select;
                    opA(inst.a);
                    opB(inst.b);
                    opC(inst.c);
                    break;
                  case Opcode::Bin:
                    bi.op = shape2(inst.a, inst.b, BOp::BinRR,
                                   BOp::BinRI, BOp::BinIR, BOp::BinII);
                    opA(inst.a);
                    opB(inst.b);
                    break;
                  case Opcode::FrameAddr:
                    bi.op = BOp::FrameAddr;
                    bi.t0 = inst.object;
                    break;
                  case Opcode::GlobalAddr:
                    bi.op = BOp::GlobalAddr;
                    bi.t0 = inst.object;
                    break;
                  case Opcode::Gep:
                    bi.op = shape2(inst.a, inst.b, BOp::GepRR,
                                   BOp::GepRI, BOp::GepIR, BOp::GepII);
                    opA(inst.a);
                    opB(inst.b);
                    break;
                  case Opcode::Load:
                    bi.op = inst.a.isImm() ? BOp::LoadI : BOp::LoadR;
                    opA(inst.a);
                    break;
                  case Opcode::Store:
                    bi.op = shape2(inst.a, inst.b, BOp::StoreRR,
                                   BOp::StoreRI, BOp::StoreIR,
                                   BOp::StoreII);
                    opA(inst.a);
                    opB(inst.b);
                    break;
                  case Opcode::MemCopy:
                    bi.op = BOp::MemCopy;
                    opA(inst.a);
                    opB(inst.b);
                    break;
                  case Opcode::Br:
                    bi.op = BOp::Br;
                    bi.t0 = blockStart[fi][inst.targets[0]];
                    break;
                  case Opcode::CondBr:
                    bi.op = inst.a.isImm() ? BOp::CondBrI : BOp::CondBrR;
                    opA(inst.a);
                    bi.t0 = blockStart[fi][inst.targets[0]];
                    bi.t1 = blockStart[fi][inst.targets[1]];
                    break;
                  case Opcode::Ret:
                    if (inst.a.isNone()) {
                        bi.op = BOp::RetVoid;
                    } else {
                        bi.op = inst.a.isImm() ? BOp::RetI : BOp::RetR;
                        opA(inst.a);
                    }
                    break;
                  case Opcode::Call:
                    bi.op = BOp::Call;
                    bi.a = inst.callee;
                    bi.t0 = static_cast<uint32_t>(p.argPool.size());
                    bi.t1 = static_cast<uint32_t>(inst.args.size());
                    for (const Value &arg : inst.args) {
                        UBF_ASSERT(!arg.isNone(),
                                   "empty call argument operand");
                        BArg ba;
                        if (arg.isImm()) {
                            ba.isImm = true;
                            ba.imm = arg.imm;
                        } else {
                            ba.reg = arg.reg;
                        }
                        p.argPool.push_back(ba);
                    }
                    break;
                  case Opcode::Malloc:
                    bi.op = BOp::Malloc;
                    opA(inst.a);
                    break;
                  case Opcode::Free:
                    bi.op = BOp::Free;
                    opA(inst.a);
                    break;
                  case Opcode::Checksum:
                    bi.op = inst.a.isImm() ? BOp::ChecksumI
                                           : BOp::ChecksumR;
                    opA(inst.a);
                    break;
                  case Opcode::LogVal:
                    bi.op = BOp::LogVal;
                    opA(inst.a);
                    opB(inst.b);
                    break;
                  case Opcode::LogPtr:
                    bi.op = BOp::LogPtr;
                    opA(inst.a);
                    opB(inst.b);
                    break;
                  case Opcode::LogBuf:
                    bi.op = BOp::LogBuf;
                    opA(inst.a);
                    opB(inst.b);
                    opC(inst.c);
                    break;
                  case Opcode::LogScopeEnter:
                    bi.op = BOp::LogScopeEnter;
                    opA(inst.a);
                    break;
                  case Opcode::LogScopeExit:
                    bi.op = BOp::LogScopeExit;
                    opA(inst.a);
                    break;
                  case Opcode::LifetimeStart:
                    bi.op = BOp::LifetimeStart;
                    bi.t0 = inst.object;
                    break;
                  case Opcode::LifetimeEnd:
                    bi.op = BOp::LifetimeEnd;
                    bi.t0 = inst.object;
                    break;
                  case Opcode::AsanCheck:
                    bi.op = BOp::AsanCheck;
                    opA(inst.a);
                    break;
                  case Opcode::UbsanArith:
                    bi.op = BOp::UbsanArith;
                    opA(inst.a);
                    opB(inst.b);
                    break;
                  case Opcode::UbsanShift:
                    bi.op = BOp::UbsanShift;
                    opB(inst.b);
                    break;
                  case Opcode::UbsanDiv:
                    bi.op = BOp::UbsanDiv;
                    opA(inst.a);
                    opB(inst.b);
                    break;
                  case Opcode::UbsanNull:
                    bi.op = BOp::UbsanNull;
                    opA(inst.a);
                    break;
                  case Opcode::UbsanBounds:
                    bi.op = BOp::UbsanBounds;
                    opA(inst.a);
                    break;
                  case Opcode::MsanCheck:
                    bi.op = BOp::MsanCheck;
                    opA(inst.a);
                    break;
                  case Opcode::HardenCheck:
                    bi.op = BOp::HardenCheck;
                    opA(inst.a);
                    opB(inst.b);
                    break;
                }
                p.code.push_back(bi);
                p.locs.push_back(inst.loc);
            }
        }
    }
    p.tier = tier;
    if (tier >= kTierFused)
        p.fusedRecords = fusePairs(p);
    return p;
}

} // namespace bc

std::shared_ptr<const bc::Program>
CodeCache::translation(const ir::Module &m, const ir::BinaryKey &key,
                       bool *wasHit)
{
    auto it = map_.find(key);
    if (it != map_.end()) {
        if (wasHit)
            *wasHit = true;
        Entry &e = it->second;
        e.runs++;
        // Profile-guided quickening: the run count *is* the profile.
        // An entry that proves hot is re-translated once at the fused
        // tier and upgraded in place; every later run of this binary
        // dispatches superinstructions.
        if (e.runs >= hotThreshold_ &&
            e.program->tier < bc::kTierFused) {
            e.program = std::make_shared<const bc::Program>(
                bc::translate(m, bc::kTierFused));
            quickened_++;
            fusedRecords_ += e.program->fusedRecords;
        }
        return e.program;
    }
    if (wasHit)
        *wasHit = false;
    // A threshold of 1 declares everything hot up front (tests and
    // benches): the first translation is already the fused tier and
    // counts as quickened. Otherwise fresh binaries get the cheap
    // baseline pass — most run exactly once and never earn fusion.
    const uint32_t tier =
        hotThreshold_ <= 1 ? bc::kTierFused : bc::kTierBaseline;
    auto prog = std::make_shared<const bc::Program>(bc::translate(m, tier));
    if (tier == bc::kTierFused) {
        quickened_++;
        fusedRecords_ += prog->fusedRecords;
    }
    if (map_.size() < maxEntries_)
        map_.emplace(key, Entry{prog, 1});
    else
        capRejects_++;
    return prog;
}

} // namespace ubfuzz::vm
