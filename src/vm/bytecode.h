/**
 * @file
 * Direct-threaded bytecode: the flattened executable form of an
 * ir::Module, and the CodeCache that memoizes translations.
 *
 * The struct-walking interpreter re-fetches a fat ir::Inst through
 * `fn->blocks[block].insts[ip]` on every step, re-decodes Value
 * reg/imm tags, and drags a SourceLoc through the hot loop. The
 * flattener translates a module *once* into a dense linear program:
 *
 *  - one flat array of fixed-size instruction records (no per-block
 *    vectors, a single `code[pc]` fetch per step),
 *  - branch targets pre-resolved to absolute pcs (no block/ip pairs),
 *  - operands pre-decoded at translation time: reg/imm operand shapes
 *    split into distinct opcodes for the hot operations, immediates
 *    folded into the record, Const values pre-canonicalized, scalar
 *    width/signedness/comparison-ness of every operation precomputed,
 *  - call targets resolved to function entry pcs (with a per-function
 *    metadata table for frame layout),
 *  - debug SourceLocs moved to a per-pc side table that the hot loop
 *    never touches unless it is tracing or reporting.
 *
 * Execution stays step-for-step identical to the reference
 * interpreter: every record corresponds to exactly one ir::Inst, so
 * step counts, timeout behavior, trap/report kinds and sites, traces,
 * and checksums are bit-identical (the test_bytecode parity suite
 * enforces this over all nine UB kinds and every dispatch mode).
 *
 * Translations are keyed by ir::BinaryKey — the (hash, length) of the
 * module's executionKey, which covers *everything* the VM reads — so
 * one translation serves every execution of a byte-identical binary:
 * the silent matrix run, the lazy debugger re-execution with tracing,
 * and any later machine that shares the cache.
 */

#ifndef UBFUZZ_VM_BYTECODE_H
#define UBFUZZ_VM_BYTECODE_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "ir/ir.h"
#include "support/source_loc.h"

namespace ubfuzz::vm {

namespace bc {

/**
 * Bytecode opcodes. The X-macro keeps the enum and the direct-threaded
 * label table (in the interpreter) in the same order by construction.
 * Suffix convention for operand-shape-specialized opcodes: R = the
 * operand is a register, I = it was an immediate and lives in the
 * record (`x` for a, `y` for b). Opcodes without a suffix read their
 * operand shapes from the record flags (cold operations only).
 *
 * The trailing F-prefixed opcodes are *superinstructions*: one record
 * whose handler retires two adjacent source instructions (the fusion
 * pass rewrites the first record's op and leaves the second record in
 * place, so the pc space, the per-pc loc table, and every branch
 * target are unchanged). Their RR/RI/IR/II suffix describes the
 * operand shape of the *Bin or Gep half*; the partner op's shape is
 * fixed by the fusion guard (see fusePairs in bytecode.cc).
 */
#define UBFUZZ_BC_OPS(X)                                                   \
    X(Nop)                                                                 \
    X(ConstK)                                                              \
    X(CastR)                                                               \
    X(CastI)                                                               \
    X(Select)                                                              \
    X(BinRR)                                                               \
    X(BinRI)                                                               \
    X(BinIR)                                                               \
    X(BinII)                                                               \
    X(FrameAddr)                                                           \
    X(GlobalAddr)                                                          \
    X(GepRR)                                                               \
    X(GepRI)                                                               \
    X(GepIR)                                                               \
    X(GepII)                                                               \
    X(LoadR)                                                               \
    X(LoadI)                                                               \
    X(StoreRR)                                                             \
    X(StoreRI)                                                             \
    X(StoreIR)                                                             \
    X(StoreII)                                                             \
    X(MemCopy)                                                             \
    X(Br)                                                                  \
    X(CondBrR)                                                             \
    X(CondBrI)                                                             \
    X(RetVoid)                                                             \
    X(RetR)                                                                \
    X(RetI)                                                                \
    X(Call)                                                                \
    X(Malloc)                                                              \
    X(Free)                                                                \
    X(ChecksumR)                                                           \
    X(ChecksumI)                                                           \
    X(LogVal)                                                              \
    X(LogPtr)                                                              \
    X(LogBuf)                                                              \
    X(LogScopeEnter)                                                       \
    X(LogScopeExit)                                                        \
    X(LifetimeStart)                                                       \
    X(LifetimeEnd)                                                         \
    X(AsanCheck)                                                           \
    X(UbsanArith)                                                          \
    X(UbsanShift)                                                          \
    X(UbsanDiv)                                                            \
    X(UbsanNull)                                                           \
    X(UbsanBounds)                                                         \
    X(MsanCheck)                                                           \
    X(HardenCheck)                                                         \
    X(FCmpBrRR)                                                            \
    X(FCmpBrRI)                                                            \
    X(FCmpBrIR)                                                            \
    X(FCmpBrII)                                                            \
    X(FLoadBinRR)                                                          \
    X(FLoadBinRI)                                                          \
    X(FLoadBinIR)                                                          \
    X(FLoadBinII)                                                          \
    X(FBinStoreRR)                                                         \
    X(FBinStoreRI)                                                         \
    X(FBinStoreIR)                                                         \
    X(FBinStoreII)                                                         \
    X(FGepLoadRR)                                                          \
    X(FGepLoadRI)                                                          \
    X(FGepLoadIR)                                                          \
    X(FGepLoadII)                                                          \
    X(FFrameAddrLoad)                                                      \
    X(FFrameAddrStoreR)                                                    \
    X(FFrameAddrStoreI)

enum class BOp : uint8_t {
#define UBFUZZ_BC_ENUM(name) name,
    UBFUZZ_BC_OPS(UBFUZZ_BC_ENUM)
#undef UBFUZZ_BC_ENUM
};

/** Per-record flag bits (BInst::flags). */
enum : uint16_t {
    /** Operand a/b/c was an immediate (only consulted by opcodes whose
     *  shape is not baked into the BOp; c's immediate lives in `imm`). */
    kOpAImm = 1 << 0,
    kOpBImm = 1 << 1,
    kOpCImm = 1 << 2,
    /** Copy of ir::Inst::flag (AsanCheck isWrite, UbsanShift variant,
     *  ground-truth source-arithmetic marker on Bin). */
    kOpIrFlag = 1 << 3,
    /** The instruction carries a valid SourceLoc (locs[pc]). */
    kOpLocValid = 1 << 4,
    // Pre-decoded properties of (kind, binOp); the hot loop never
    // calls ast::scalarBits/scalarSigned or the binOp classifiers.
    kOpSigned = 1 << 5,
    kOpCmp = 1 << 6,
    kOpArith = 1 << 7,
    kOpShift = 1 << 8,
    kOpDivRem = 1 << 9,
};

/**
 * One flattened instruction: a fixed 56-byte record. Field roles vary
 * by opcode exactly as in ir::Inst, with operands pre-decoded:
 * register ids in a/b/c, immediates in x (operand a), y (operand b),
 * or imm (operand c, for opcodes that do not use imm otherwise);
 * absolute branch-target pcs in t0/t1; frame/global object index in
 * t0; callee function index in a with the argument-pool range in
 * t0/t1.
 */
struct BInst
{
    BOp op = BOp::Nop;
    uint8_t bits = 0; ///< ast::scalarBits(kind), pre-decoded
    uint16_t flags = 0;
    ir::ScalarKind kind = ir::ScalarKind::S64;
    ir::BinOp binOp = ir::BinOp::Add;
    uint16_t pad = 0;
    uint32_t dst = 0;
    uint32_t a = 0, b = 0, c = 0;
    uint32_t t0 = 0, t1 = 0;
    uint64_t x = 0, y = 0;
    uint64_t imm = 0;
};

/** One pre-decoded call argument. */
struct BArg
{
    uint64_t imm = 0;
    uint32_t reg = 0;
    bool isImm = false;
};

/** Per-function execution metadata (frame layout, register count). */
struct BFunction
{
    uint32_t entryPc = 0;
    uint32_t numRegs = 1;
    uint32_t numParams = 0;
    std::vector<ir::FrameObject> frame;
};

/**
 * A fully translated module: everything the machine reads during
 * execution, self-contained (no pointers into the source ir::Module,
 * so a translation outlives the module it was made from — which is
 * what lets a CodeCache serve byte-identical binaries compiled later).
 */
struct Program
{
    std::vector<BInst> code;
    /** Per-pc debug locations; read only when tracing or reporting. */
    std::vector<SourceLoc> locs;
    std::vector<BFunction> functions;
    std::vector<ir::GlobalObject> globals;
    std::vector<BArg> argPool;
    int32_t mainIndex = -1;
    bool asanGlobals = false;
    bool asanHeap = false;
    ir::MsanPolicy msan;
    /** Fusion tier this program was translated at (kTierBaseline or
     *  kTierFused) and how many superinstruction records the fusion
     *  pass produced (0 at kTierBaseline). */
    uint32_t tier = 0;
    uint32_t fusedRecords = 0;
};

/** Fusion tiers for translate(). */
enum : uint32_t {
    /** Cheap single-pass flattening, no fusion — what a binary gets
     *  the first time it is seen. */
    kTierBaseline = 0,
    /** Flatten + superinstruction fusion pass — what CodeCache
     *  re-translates hot binaries at (profile-guided quickening). */
    kTierFused = 1,
};

/**
 * Does the flattener have a handler for @p op? Covers every value in
 * [0, ir::kNumOpcodes) — enforced by a test — so an opcode added to
 * the IR without a bytecode handler fails translation (loudly, at
 * translation time) rather than corrupting a run.
 */
bool opcodeHasHandler(ir::Opcode op);

/**
 * Flatten @p m. Panics on an opcode with no handler. At kTierFused a
 * peephole pass then combines hot adjacent record pairs (Cmp+CondBr,
 * Load+Bin, Bin+Store, Gep+Load) into superinstructions; fusion never
 * changes observable behavior — a fused record retires both steps with
 * the same counts, traps, reports, and traces as the unfused pair (the
 * test_bytecode stepLimit-boundary suite pins the mid-pair timeout
 * case against runReference).
 */
Program translate(const ir::Module &m, uint32_t tier = kTierBaseline);

} // namespace bc

/**
 * Memoized translations keyed by ir::BinaryKey. One cache serves a
 * whole campaign unit: every machine of the unit (the per-program
 * differential machines and the ground-truth classifier) asks it
 * before flattening, so a binary executed more than once — the
 * debugger re-execution of a silent binary is the common case — is
 * translated exactly once.
 *
 * Not thread-safe by design, like compiler::CompilationCache: one per
 * campaign unit, and the orchestrator's parallelism is across units.
 * The entry cap bounds memory like fuzzer::CorpusMemo's: a full cache
 * stops admitting and hands out uncached translations (identical
 * results, a little less work saved).
 *
 * Profile-guided quickening: a fresh binary gets the cheap
 * bc::kTierBaseline translation (most binaries run once — the silent
 * matrix pass — and never earn the fusion pass). The cache counts runs
 * per entry; when a binary's run count reaches the hot threshold it is
 * re-translated at bc::kTierFused and the entry is upgraded in place,
 * so every later run of that binary dispatches superinstructions.
 * Fused and unfused programs are observably identical, so quickening
 * never perturbs results — only ns/step.
 */
class CodeCache
{
  public:
    /** Default memory bound; tests shrink it to prove results are
     *  cap-independent (see CampaignConfig::codeCacheCap). */
    static constexpr size_t kDefaultMaxEntries = 1024;

    /** Run count at which an entry is quickened to bc::kTierFused.
     *  2 = the first *re*-execution pays the fusion pass: a binary
     *  executed once never does. Tests and benches pass 1 to fuse
     *  every translation up front. */
    static constexpr size_t kDefaultHotThreshold = 2;

    explicit CodeCache(size_t maxEntries = kDefaultMaxEntries,
                       size_t hotThreshold = kDefaultHotThreshold)
        : maxEntries_(maxEntries), hotThreshold_(hotThreshold)
    {
    }
    CodeCache(const CodeCache &) = delete;
    CodeCache &operator=(const CodeCache &) = delete;

    /**
     * The translation of @p m under @p key (which must be
     * ir::binaryKey(m) — callers that already serialized the module,
     * like the batch runner, pass it to avoid a second pass).
     * @p wasHit reports whether the translation was served from the
     * cache (the caller owns the work counters).
     */
    std::shared_ptr<const bc::Program>
    translation(const ir::Module &m, const ir::BinaryKey &key,
                bool *wasHit = nullptr);

    size_t size() const { return map_.size(); }

    /** Translations not retained because the cache was full (the
     *  stop-admitting counter; the campaign folds it into
     *  vm::ExecStats::translationCapRejects per unit). */
    size_t capRejects() const { return capRejects_; }

    /** Hot re-translations performed (entries upgraded to
     *  bc::kTierFused; folded into ExecStats::quickenedTranslations).
     *  Each is *extra* work on top of the baseline translation, so it
     *  is deliberately not part of the
     *  executions == translations + translationHits identity. */
    size_t quickenedTranslations() const { return quickened_; }

    /** Superinstruction records across all quickened translations this
     *  cache performed (folded into ExecStats::fusedRecords). */
    size_t fusedRecords() const { return fusedRecords_; }

  private:
    struct Entry
    {
        std::shared_ptr<const bc::Program> program;
        /** Times this entry served a run; drives quickening. */
        size_t runs = 0;
    };

    /** Memory bound: translations are retained per distinct binary. */
    size_t maxEntries_;
    /** Run count that triggers the kTierFused re-translation. */
    size_t hotThreshold_;
    size_t capRejects_ = 0;
    size_t quickened_ = 0;
    size_t fusedRecords_ = 0;

    /** The key carries its own FNV-1a hash, so the unordered lookup is
     *  hash-mix + one bucket probe — no O(log n) ordered compares on
     *  the per-execution hot path. */
    std::unordered_map<ir::BinaryKey, Entry, ir::BinaryKeyHash> map_;
};

} // namespace ubfuzz::vm

#endif // UBFUZZ_VM_BYTECODE_H
