/**
 * @file
 * Raw dynamic-profile records collected by the VM while executing an
 * instrumented seed program (the __log_* builtins of §3.2.2). UBGen
 * wraps these in the paper's query interface (Q_liv, Q_val, Q_mem,
 * Q_scp).
 */

#ifndef UBFUZZ_VM_PROFILE_DATA_H
#define UBFUZZ_VM_PROFILE_DATA_H

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace ubfuzz::vm {

/** What kind of storage an address belongs to. */
enum class ObjectKind : uint8_t { Global, Stack, Heap };

/** Liveness state of an allocation at some point in time. */
enum class ObjectState : uint8_t { Live, Freed, ScopeEnded };

/** A pointer observation: where it pointed and into what object. */
struct PtrRecord
{
    uint64_t address = 0;
    /** Owning object at log time; id 0 means "no object". */
    uint64_t objectId = 0;
    uint64_t objectBase = 0;
    uint64_t objectSize = 0;
    ObjectKind objectKind = ObjectKind::Global;
    ObjectState objectState = ObjectState::Live;
};

/** A buffer observation from __log_buf(site, p, size). */
struct BufRecord
{
    uint64_t address = 0;
    uint64_t size = 0;
    uint64_t objectId = 0;
    ObjectKind objectKind = ObjectKind::Global;
};

/** Scope entry/exit event from __log_scope_enter/exit(blockId). */
struct ScopeEvent
{
    uint64_t blockId = 0;
    bool enter = false;
    uint64_t seq = 0;
};

/** One heap allocation's life, from the VM's own bookkeeping. */
struct AllocRecord
{
    uint64_t objectId = 0;
    uint64_t base = 0;
    uint64_t size = 0;
    uint64_t allocSeq = 0;
    uint64_t freeSeq = 0; ///< 0 when never freed
};

/** Everything one profiled execution observed. */
struct RawProfile
{
    /** site id -> values in observation order (__log_val). */
    std::unordered_map<uint64_t, std::vector<int64_t>> values;
    /** site id -> pointer observations (__log_ptr). */
    std::unordered_map<uint64_t, std::vector<PtrRecord>> pointers;
    /** site id -> buffer observations (__log_buf). */
    std::unordered_map<uint64_t, std::vector<BufRecord>> buffers;
    std::vector<ScopeEvent> scopes;
    std::vector<AllocRecord> heapAllocs;
    uint64_t eventSeq = 0;

    void
    clear()
    {
        values.clear();
        pointers.clear();
        buffers.clear();
        scopes.clear();
        heapAllocs.clear();
        eventSeq = 0;
    }
};

} // namespace ubfuzz::vm

#endif // UBFUZZ_VM_PROFILE_DATA_H
