#include "generator/generator.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ast/typing.h"
#include "support/rng.h"

namespace ubfuzz::gen {

using namespace ast;

namespace {

const ScalarKind kVarKinds[] = {
    ScalarKind::S8, ScalarKind::S8, ScalarKind::U8, ScalarKind::S16,
    ScalarKind::S16, ScalarKind::U16, ScalarKind::S32, ScalarKind::S32,
    ScalarKind::S32, ScalarKind::U32, ScalarKind::S64, ScalarKind::S64,
    ScalarKind::U64,
};

class Generator
{
  public:
    explicit Generator(const GeneratorConfig &cfg)
        : cfg_(cfg), rng_(cfg.seed * 0x9e3779b97f4a7c15ULL + 0x1234567),
          prog_(std::make_unique<Program>()), eb_(*prog_)
    {}

    std::unique_ptr<Program>
    run()
    {
        makeStructs();
        makeGlobals();
        makeHelpers();
        makeMain();
        return std::move(prog_);
    }

  private:
    /** Static points-to fact for a pointer variable: it addresses
     *  element `offset` of `target` (arraySize 1 for scalars). */
    struct PtrInfo
    {
        VarDecl *target = nullptr;
        const Type *elemType = nullptr;
        uint32_t offset = 0;
        uint32_t arraySize = 1;
    };

    GeneratorConfig cfg_;
    Rng rng_;
    std::unique_ptr<Program> prog_;
    ExprBuilder eb_;
    int nameCounter_ = 0;

    std::vector<std::vector<VarDecl *>> scopes_;
    std::unordered_map<VarDecl *, PtrInfo> ptrInfo_;
    std::unordered_set<VarDecl *> frozen_; ///< loop counters etc.
    std::vector<VarDecl *> heapPtrs_;      ///< freed in the epilogue
    /** Helpers: generated functions callable from later code. */
    struct Helper
    {
        FunctionDecl *fn;
        bool wantsBuffer; ///< first param: int* with >= 4 elements
    };
    std::vector<Helper> helpers_;
    /** A global int array with >= 4 elements (helper buffer arg). */
    VarDecl *bufferArray_ = nullptr;
    /** Suppress calls inside re-evaluated wrapper operands. */
    bool noCalls_ = false;

    std::string
    freshName(const char *stem)
    {
        return std::string(stem) + std::to_string(nameCounter_++);
    }

    TypeTable &tt() { return prog_->types(); }

    ScalarKind
    pickKind()
    {
        return kVarKinds[rng_.below(std::size(kVarKinds))];
    }

    //===------------------------------------------------------------===//
    // Scopes and variable selection
    //===------------------------------------------------------------===//

    void pushScope() { scopes_.emplace_back(); }
    void
    popScope()
    {
        for (VarDecl *v : scopes_.back())
            ptrInfo_.erase(v);
        scopes_.pop_back();
    }

    void declare(VarDecl *v) { scopes_.back().push_back(v); }

    template <typename Pred>
    VarDecl *
    pickVar(Pred &&pred)
    {
        std::vector<VarDecl *> candidates;
        for (const auto &scope : scopes_)
            for (VarDecl *v : scope)
                if (pred(v))
                    candidates.push_back(v);
        if (candidates.empty())
            return nullptr;
        return candidates[rng_.index(candidates)];
    }

    VarDecl *
    pickScalarVar()
    {
        return pickVar([](VarDecl *v) { return v->type()->isInteger(); });
    }

    VarDecl *
    pickMutableScalar()
    {
        return pickVar([this](VarDecl *v) {
            return v->type()->isInteger() && !frozen_.count(v);
        });
    }

    VarDecl *
    pickArrayVar()
    {
        return pickVar([](VarDecl *v) {
            return v->type()->isArray() &&
                   v->type()->element()->isInteger();
        });
    }

    VarDecl *
    pickPointerVar()
    {
        return pickVar([this](VarDecl *v) {
            return v->type()->isPointer() && ptrInfo_.count(v) &&
                   ptrInfo_.at(v).elemType->isInteger();
        });
    }

    VarDecl *
    pickStructVar()
    {
        return pickVar([](VarDecl *v) { return v->type()->isStruct(); });
    }

    VarDecl *
    pickStructPtrVar()
    {
        return pickVar([this](VarDecl *v) {
            return v->type()->isPointer() &&
                   v->type()->element()->isStruct() &&
                   ptrInfo_.count(v);
        });
    }

    //===------------------------------------------------------------===//
    // Top-level structure
    //===------------------------------------------------------------===//

    void
    makeStructs()
    {
        int n = static_cast<int>(rng_.below(3)); // 0..2 structs
        for (int i = 0; i < n; i++) {
            auto *s = prog_->ctx().make<StructDecl>(freshName("S"));
            int fields = 1 + static_cast<int>(rng_.below(3));
            for (int f = 0; f < fields; f++) {
                s->addField(prog_->ctx().make<FieldDecl>(
                    freshName("f"), tt().scalar(pickKind())));
            }
            prog_->structs().push_back(s);
        }
    }

    void
    makeGlobals()
    {
        pushScope();
        // Guaranteed buffer array for helper-function contracts.
        {
            const Type *ty = tt().array(tt().s32(), 6);
            auto *g = prog_->ctx().make<VarDecl>(
                freshName("ga"), ty, Storage::Global,
                makeArrayInit(ty));
            prog_->globals().push_back(g);
            declare(g);
            bufferArray_ = g;
        }
        int n = 3 + static_cast<int>(rng_.below(
                        static_cast<uint64_t>(cfg_.maxGlobals - 2)));
        for (int i = 0; i < n; i++) {
            switch (rng_.below(6)) {
              case 0:
              case 1: { // scalar
                ScalarKind k = pickKind();
                auto *g = prog_->ctx().make<VarDecl>(
                    freshName("g"), tt().scalar(k), Storage::Global,
                    eb_.lit(rng_.range(-20, 20),
                            ast::scalarBits(k) >= 64 ? ScalarKind::S64
                                                     : ScalarKind::S32));
                prog_->globals().push_back(g);
                declare(g);
                break;
              }
              case 2: { // array
                ScalarKind k = pickKind();
                uint32_t size =
                    2 + static_cast<uint32_t>(rng_.below(9));
                const Type *ty = tt().array(tt().scalar(k), size);
                auto *g = prog_->ctx().make<VarDecl>(
                    freshName("ga"), ty, Storage::Global,
                    makeArrayInit(ty));
                prog_->globals().push_back(g);
                declare(g);
                break;
              }
              case 3: { // pointer to a prior global scalar or element
                makeGlobalPointer();
                break;
              }
              case 4: { // struct instance (+ occasionally a pointer)
                if (prog_->structs().empty()) {
                    makeGlobalPointer();
                    break;
                }
                const StructDecl *s =
                    prog_->structs()[rng_.index(prog_->structs())];
                auto *g = prog_->ctx().make<VarDecl>(
                    freshName("gs"), tt().structTy(s), Storage::Global,
                    nullptr);
                prog_->globals().push_back(g);
                declare(g);
                if (rng_.percent(60)) {
                    const Type *pt = tt().pointer(tt().structTy(s));
                    auto *p = prog_->ctx().make<VarDecl>(
                        freshName("gsp"), pt, Storage::Global,
                        eb_.addrOf(eb_.ref(g)));
                    prog_->globals().push_back(p);
                    declare(p);
                    ptrInfo_[p] = {g, tt().structTy(s), 0, 1};
                }
                break;
              }
              default: { // pointer-to-pointer
                VarDecl *p = pickPointerVar();
                if (!p || p->storage() != Storage::Global) {
                    makeGlobalPointer();
                    break;
                }
                const Type *ppt = tt().pointer(p->type());
                auto *pp = prog_->ctx().make<VarDecl>(
                    freshName("gpp"), ppt, Storage::Global,
                    eb_.addrOf(eb_.ref(p)));
                prog_->globals().push_back(pp);
                declare(pp);
                break;
              }
            }
        }
    }

    void
    makeGlobalPointer()
    {
        // Point at a global scalar or a global array element.
        VarDecl *target = nullptr;
        uint32_t offset = 0, size = 1;
        if (rng_.percent(60)) {
            target = pickVar([](VarDecl *v) {
                return v->storage() == Storage::Global &&
                       v->type()->isArray() &&
                       v->type()->element()->isInteger();
            });
            if (target) {
                size = target->type()->arraySize();
                offset = static_cast<uint32_t>(rng_.below(size));
            }
        }
        if (!target) {
            target = pickVar([](VarDecl *v) {
                return v->storage() == Storage::Global &&
                       v->type()->isInteger();
            });
            offset = 0;
            size = 1;
        }
        if (!target)
            return;
        const Type *elem = target->type()->isArray()
                               ? target->type()->element()
                               : target->type();
        Expr *init =
            target->type()->isArray()
                ? eb_.addrOf(eb_.index(eb_.ref(target),
                                       eb_.lit(offset)))
                : eb_.addrOf(eb_.ref(target));
        auto *p = prog_->ctx().make<VarDecl>(
            freshName("gp"), tt().pointer(elem), Storage::Global, init);
        prog_->globals().push_back(p);
        declare(p);
        ptrInfo_[p] = {target, elem, offset, size};
    }

    Expr *
    makeArrayInit(const Type *arrayTy)
    {
        std::vector<Expr *> elems;
        ScalarKind ek = arrayTy->element()->scalar();
        for (uint32_t i = 0; i < arrayTy->arraySize(); i++) {
            elems.push_back(
                eb_.lit(rng_.range(-9, 9),
                        ast::scalarBits(ek) >= 64 ? ScalarKind::S64
                                                  : ScalarKind::S32));
        }
        return prog_->ctx().make<InitList>(std::move(elems), arrayTy);
    }

    //===------------------------------------------------------------===//
    // Expressions
    //===------------------------------------------------------------===//

    Expr *
    literal()
    {
        if (rng_.percent(60))
            return eb_.lit(rng_.range(-9, 16));
        if (rng_.percent(30))
            return eb_.lit(rng_.range(-3, 3), ScalarKind::S64);
        return eb_.lit(rng_.range(0, 255));
    }

    /** A guaranteed-in-range index expression for a buffer of `size`. */
    Expr *
    safeIndex(uint32_t size, int depth)
    {
        if (size == 0)
            return eb_.lit(0);
        if (depth <= 0 || rng_.percent(55))
            return eb_.lit(static_cast<int64_t>(rng_.below(size)));
        // (unsigned)(e) % size — always in [0, size).
        Expr *e = genExpr(depth - 1);
        return eb_.bin(BinaryOp::Rem,
                       eb_.cast(tt().scalar(ScalarKind::U32), e),
                       eb_.litOf(size, tt().scalar(ScalarKind::U32)));
    }

    /** Read access through a pointer with known points-to facts. */
    Expr *
    pointerRead(VarDecl *p)
    {
        const PtrInfo &info = ptrInfo_.at(p);
        // *(p + c) with c keeping the access in bounds.
        int64_t lo = -static_cast<int64_t>(info.offset);
        int64_t hi = static_cast<int64_t>(info.arraySize) -
                     static_cast<int64_t>(info.offset) - 1;
        if (hi > lo && rng_.percent(40)) {
            int64_t c = rng_.range(lo, hi);
            if (c != 0) {
                return eb_.deref(
                    eb_.bin(BinaryOp::Add, eb_.ref(p), eb_.lit(c)));
            }
        }
        if (hi > lo && rng_.percent(30)) {
            // p[c] form.
            return eb_.index(eb_.ref(p), eb_.lit(rng_.range(lo, hi)));
        }
        return eb_.deref(eb_.ref(p));
    }

    /** Wide signed arithmetic is wrapped through unsigned to stay
     *  UB-free (Csmith's safe_math); NoSafe emits it raw. */
    Expr *
    arith(BinaryOp op, Expr *lhs, Expr *rhs)
    {
        const Type *result =
            binaryResultType(tt(), op, lhs->type(), rhs->type());
        // Narrow (8/16-bit) operands cannot overflow int arithmetic —
        // not even multiplication: 32767 * 32767 < INT_MAX — so only
        // wide signed arithmetic needs the unsigned wrap.
        bool needs_wrap =
            ast::scalarSigned(result->scalar()) &&
            (exprIsWide(lhs) || exprIsWide(rhs));
        if (!cfg_.safeMath || !needs_wrap)
            return eb_.bin(op, lhs, rhs);
        ScalarKind uk = ast::scalarBits(result->scalar()) >= 64
                            ? ScalarKind::U64
                            : ScalarKind::U32;
        Expr *wrapped = eb_.bin(op, eb_.cast(tt().scalar(uk), lhs),
                                eb_.cast(tt().scalar(uk), rhs));
        return eb_.cast(result, wrapped);
    }

    /** Might this expression hold values near the type bounds? Narrow
     *  (8/16-bit) reads and small literals cannot overflow int ops. */
    bool
    exprIsWide(const Expr *e)
    {
        switch (e->kind()) {
          case NodeKind::IntLit:
            return false;
          case NodeKind::VarRef:
          case NodeKind::Index:
          case NodeKind::Member:
          case NodeKind::Unary:
            return ast::scalarBits(e->type()->isInteger()
                                       ? e->type()->scalar()
                                       : ScalarKind::S64) >= 32;
          case NodeKind::Cast:
            return ast::scalarBits(e->type()->scalar()) >= 32 &&
                   exprIsWide(e->as<Cast>()->sub());
          default:
            return true;
        }
    }

    Expr *
    safeDivRem(BinaryOp op, Expr *x, Expr *y, int depth)
    {
        if (!cfg_.safeMath)
            return eb_.bin(op, x, y);
        // ((y == 0) || ((x == MIN) && (y == -1))) ? x : x op y
        const Type *result =
            binaryResultType(tt(), op, x->type(), y->type());
        Expr *zero_test = eb_.bin(BinaryOp::Eq, y, eb_.lit(0));
        Expr *guard;
        if (ast::scalarSigned(result->scalar())) {
            int bits = ast::scalarBits(result->scalar());
            int64_t minv =
                bits >= 64 ? INT64_MIN : -(1LL << (bits - 1));
            // INT64_MIN has no literal spelling in C (9223372036854775808
            // overflows long before negation), so spell it the idiomatic
            // way: (-9223372036854775807l - 1l). INT32_MIN fits in a
            // long literal.
            Expr *min_lit =
                bits >= 64
                    ? eb_.bin(BinaryOp::Sub,
                              eb_.lit(INT64_MIN + 1, ScalarKind::S64),
                              eb_.lit(1, ScalarKind::S64))
                    : static_cast<Expr *>(
                          eb_.litOf(static_cast<uint64_t>(minv),
                                    tt().s64()));
            Expr *min_test = eb_.bin(
                BinaryOp::LAnd,
                eb_.bin(BinaryOp::Eq, cloneOf(x), min_lit),
                eb_.bin(BinaryOp::Eq, cloneOf(y),
                        eb_.lit(-1)));
            guard = eb_.bin(BinaryOp::LOr, zero_test, min_test);
        } else {
            guard = zero_test;
        }
        Expr *div = eb_.bin(op, cloneOf(x), cloneOf(y));
        (void)depth;
        return eb_.select(guard, cloneOf(x), div);
    }

    Expr *
    safeShift(BinaryOp op, Expr *x, Expr *y)
    {
        if (!cfg_.safeMath)
            return eb_.bin(op, x, y);
        const Type *lt = promote(tt(), x->type());
        int bits = ast::scalarBits(lt->scalar());
        Expr *count = eb_.bin(BinaryOp::BitAnd, y, eb_.lit(bits - 1));
        return eb_.bin(op, x, count);
    }

    /**
     * Structural copy of a pure expression (safe wrappers evaluate
     * operands more than once; all generated expressions are pure).
     */
    Expr *
    cloneOf(Expr *e)
    {
        switch (e->kind()) {
          case NodeKind::IntLit:
            return eb_.litOf(e->as<IntLit>()->value(), e->type());
          case NodeKind::VarRef:
            return eb_.ref(e->as<VarRef>()->decl());
          case NodeKind::Unary: {
            auto *u = e->as<Unary>();
            return eb_.unary(u->op(), cloneOf(u->sub()));
          }
          case NodeKind::Binary: {
            auto *b = e->as<Binary>();
            return eb_.bin(b->op(), cloneOf(b->lhs()),
                           cloneOf(b->rhs()));
          }
          case NodeKind::Select: {
            auto *s = e->as<Select>();
            return eb_.select(cloneOf(s->cond()),
                              cloneOf(s->trueExpr()),
                              cloneOf(s->falseExpr()));
          }
          case NodeKind::Index: {
            auto *ix = e->as<Index>();
            return eb_.index(cloneOf(ix->base()),
                             cloneOf(ix->index()));
          }
          case NodeKind::Member: {
            auto *m = e->as<Member>();
            return eb_.member(cloneOf(m->base()), m->field(),
                              m->isArrow());
          }
          case NodeKind::Cast:
            return eb_.cast(e->type(), cloneOf(e->as<Cast>()->sub()));
          case NodeKind::Call: {
            auto *c = e->as<Call>();
            std::vector<Expr *> args;
            for (Expr *a : c->args())
                args.push_back(cloneOf(a));
            return eb_.call(c->callee(), std::move(args));
          }
          default:
            UBF_PANIC("cloneOf: unexpected expression");
        }
    }

    Expr *
    genLeaf(int depth)
    {
        for (int attempt = 0; attempt < 8; attempt++) {
            switch (rng_.below(7)) {
              case 0:
                return literal();
              case 1: {
                if (VarDecl *v = pickScalarVar())
                    return eb_.ref(v);
                break;
              }
              case 2: {
                if (VarDecl *a = pickArrayVar()) {
                    return eb_.index(
                        eb_.ref(a),
                        safeIndex(a->type()->arraySize(), depth));
                }
                break;
              }
              case 3: {
                if (VarDecl *p = pickPointerVar())
                    return pointerRead(p);
                break;
              }
              case 4: {
                if (VarDecl *s = pickStructVar()) {
                    const StructDecl *sd = s->type()->structDecl();
                    const FieldDecl *f =
                        sd->fields()[rng_.index(sd->fields())];
                    return eb_.member(eb_.ref(s), f, false);
                }
                break;
              }
              case 5: {
                if (VarDecl *sp = pickStructPtrVar()) {
                    const StructDecl *sd =
                        sp->type()->element()->structDecl();
                    const FieldDecl *f =
                        sd->fields()[rng_.index(sd->fields())];
                    return eb_.member(eb_.ref(sp), f, true);
                }
                break;
              }
              default: {
                if (!helpers_.empty() && !noCalls_ && rng_.percent(40))
                    return callHelper();
                break;
              }
            }
        }
        return literal();
    }

    Expr *
    callHelper()
    {
        const Helper &h = helpers_[rng_.index(helpers_)];
        std::vector<Expr *> args;
        for (size_t i = 0; i < h.fn->params().size(); i++) {
            if (i == 0 && h.wantsBuffer) {
                args.push_back(eb_.ref(bufferArray_));
            } else {
                args.push_back(
                    rng_.percent(50)
                        ? literal()
                        : static_cast<Expr *>(
                              pickScalarVar()
                                  ? eb_.ref(pickScalarVar())
                                  : literal()));
            }
        }
        return eb_.call(h.fn, std::move(args));
    }

    Expr *
    genExpr(int depth)
    {
        if (depth <= 0 || rng_.percent(30))
            return genLeaf(depth);
        switch (rng_.below(10)) {
          case 0:
          case 1: { // arithmetic
            BinaryOp op = rng_.pick(
                {BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul});
            return arith(op, genExpr(depth - 1), genExpr(depth - 1));
          }
          case 2: { // division / remainder
            BinaryOp op =
                rng_.pick({BinaryOp::Div, BinaryOp::Rem});
            // The safe wrapper re-evaluates both operands, so they
            // must be repeat-stable: no (side-effecting) calls.
            bool saved = noCalls_;
            noCalls_ = true;
            Expr *x = genExpr(depth - 1);
            Expr *y = genExpr(depth - 1);
            noCalls_ = saved;
            return safeDivRem(op, x, y, depth);
          }
          case 3: { // shift
            BinaryOp op =
                rng_.pick({BinaryOp::Shl, BinaryOp::Shr});
            return safeShift(op, genExpr(depth - 1),
                             genExpr(depth - 1));
          }
          case 4: { // comparison
            BinaryOp op = rng_.pick({BinaryOp::Lt, BinaryOp::Le,
                                     BinaryOp::Gt, BinaryOp::Ge,
                                     BinaryOp::Eq, BinaryOp::Ne});
            return eb_.bin(op, genExpr(depth - 1), genExpr(depth - 1));
          }
          case 5: { // bitwise
            BinaryOp op = rng_.pick({BinaryOp::BitAnd, BinaryOp::BitOr,
                                     BinaryOp::BitXor});
            return eb_.bin(op, genExpr(depth - 1), genExpr(depth - 1));
          }
          case 6: { // logical
            BinaryOp op = rng_.pick({BinaryOp::LAnd, BinaryOp::LOr});
            return eb_.bin(op, genExpr(depth - 1), genExpr(depth - 1));
          }
          case 7: { // narrowing / widening cast
            ScalarKind k = rng_.pick(
                {ScalarKind::S8, ScalarKind::S16, ScalarKind::U16,
                 ScalarKind::S32, ScalarKind::S64});
            return eb_.cast(tt().scalar(k), genExpr(depth - 1));
          }
          case 8: { // ternary
            return eb_.select(genExpr(depth - 1), genExpr(depth - 1),
                              genExpr(depth - 1));
          }
          default: { // unary
            UnaryOp op = rng_.pick(
                {UnaryOp::Neg, UnaryOp::BitNot, UnaryOp::LogNot});
            Expr *sub = genExpr(depth - 1);
            if (op == UnaryOp::Neg && cfg_.safeMath &&
                exprIsWide(sub)) {
                // -(x) on wide values goes through unsigned too.
                ScalarKind uk =
                    ast::scalarBits(promote(tt(), sub->type())
                                        ->scalar()) >= 64
                        ? ScalarKind::U64
                        : ScalarKind::U32;
                return eb_.cast(
                    promote(tt(), sub->type()),
                    eb_.unary(UnaryOp::Neg,
                              eb_.cast(tt().scalar(uk), sub)));
            }
            return eb_.unary(op, sub);
          }
        }
    }

    //===------------------------------------------------------------===//
    // Statements
    //===------------------------------------------------------------===//

    Stmt *
    genAssign()
    {
        // Choose an lvalue.
        for (int attempt = 0; attempt < 8; attempt++) {
            switch (rng_.below(6)) {
              case 0: { // scalar = expr
                VarDecl *v = pickMutableScalar();
                if (!v)
                    break;
                // Compound arithmetic assignment only on unsigned
                // types (wrapping, never UB); bitwise compound on any.
                if (rng_.percent(25) &&
                    !ast::scalarSigned(v->type()->scalar())) {
                    AssignOp op = rng_.pick({AssignOp::AddAssign,
                                             AssignOp::SubAssign,
                                             AssignOp::MulAssign});
                    return prog_->ctx().make<AssignStmt>(
                        op, eb_.ref(v), genExpr(cfg_.maxExprDepth - 1));
                }
                if (rng_.percent(15)) {
                    AssignOp op = rng_.pick({AssignOp::AndAssign,
                                             AssignOp::OrAssign,
                                             AssignOp::XorAssign});
                    return prog_->ctx().make<AssignStmt>(
                        op, eb_.ref(v), genExpr(cfg_.maxExprDepth - 1));
                }
                return prog_->ctx().make<AssignStmt>(
                    AssignOp::Assign, eb_.ref(v),
                    genExpr(cfg_.maxExprDepth));
              }
              case 1: { // array[idx] = expr
                VarDecl *a = pickArrayVar();
                if (!a)
                    break;
                Expr *lhs = eb_.index(
                    eb_.ref(a),
                    safeIndex(a->type()->arraySize(), 2));
                return prog_->ctx().make<AssignStmt>(
                    AssignOp::Assign, lhs, genExpr(cfg_.maxExprDepth));
              }
              case 2: { // *p = expr (or p[c] = expr, or *p |= expr)
                VarDecl *p = pickPointerVar();
                if (!p)
                    break;
                Expr *lhs = pointerRead(p);
                if (rng_.percent(25)) {
                    // Read-modify-write deref (the ++(*p) family);
                    // bitwise compound ops can never overflow.
                    AssignOp op = rng_.pick({AssignOp::AndAssign,
                                             AssignOp::OrAssign,
                                             AssignOp::XorAssign});
                    return prog_->ctx().make<AssignStmt>(
                        op, lhs, genExpr(cfg_.maxExprDepth - 1));
                }
                return prog_->ctx().make<AssignStmt>(
                    AssignOp::Assign, lhs, genExpr(cfg_.maxExprDepth));
              }
              case 3: { // struct field
                VarDecl *s = pickStructVar();
                if (!s)
                    break;
                const StructDecl *sd = s->type()->structDecl();
                const FieldDecl *f =
                    sd->fields()[rng_.index(sd->fields())];
                return prog_->ctx().make<AssignStmt>(
                    AssignOp::Assign, eb_.member(eb_.ref(s), f, false),
                    genExpr(cfg_.maxExprDepth));
              }
              case 4: { // sp->field = expr
                VarDecl *sp = pickStructPtrVar();
                if (!sp)
                    break;
                const StructDecl *sd =
                    sp->type()->element()->structDecl();
                const FieldDecl *f =
                    sd->fields()[rng_.index(sd->fields())];
                return prog_->ctx().make<AssignStmt>(
                    AssignOp::Assign, eb_.member(eb_.ref(sp), f, true),
                    genExpr(cfg_.maxExprDepth));
              }
              default: { // struct copy through pointer: *sp = s
                VarDecl *sp = pickStructPtrVar();
                VarDecl *s = pickStructVar();
                if (!sp || !s ||
                    sp->type()->element() != s->type())
                    break;
                return prog_->ctx().make<AssignStmt>(
                    AssignOp::Assign, eb_.deref(eb_.ref(sp)),
                    eb_.ref(s));
              }
            }
        }
        VarDecl *v = pickMutableScalar();
        if (!v) {
            return prog_->ctx().make<ExprStmt>(
                eb_.call(prog_->builtin(Builtin::Checksum),
                         {eb_.cast(tt().s64(), literal())}));
        }
        return prog_->ctx().make<AssignStmt>(AssignOp::Assign,
                                             eb_.ref(v),
                                             genExpr(cfg_.maxExprDepth));
    }

    Block *
    genBlock(int depth, int stmts)
    {
        auto *b = prog_->ctx().make<Block>();
        pushScope();
        for (int i = 0; i < stmts; i++)
            b->append(genStmt(depth));
        popScope();
        return b;
    }

    Stmt *
    genStmt(int depth)
    {
        uint64_t roll = rng_.below(12);
        if (depth <= 0 && roll >= 8)
            roll = rng_.below(8);
        switch (roll) {
          case 0: case 1: case 2: case 3: case 4:
            return genAssign();
          case 5: { // local declaration (always initialized)
            ScalarKind k = pickKind();
            auto *v = prog_->ctx().make<VarDecl>(
                freshName("l"), tt().scalar(k), Storage::Local,
                genExpr(cfg_.maxExprDepth - 1));
            declare(v);
            return prog_->ctx().make<DeclStmt>(v);
          }
          case 6: { // local array declaration
            ScalarKind k = rng_.pick(
                {ScalarKind::S8, ScalarKind::S32, ScalarKind::S64});
            uint32_t size = 2 + static_cast<uint32_t>(rng_.below(7));
            const Type *ty = tt().array(tt().scalar(k), size);
            auto *v = prog_->ctx().make<VarDecl>(
                freshName("la"), ty, Storage::Local,
                makeArrayInit(ty));
            declare(v);
            return prog_->ctx().make<DeclStmt>(v);
          }
          case 7: { // helper call for effect, or checksum probe
            if (!helpers_.empty() && rng_.percent(70)) {
                return prog_->ctx().make<ExprStmt>(callHelper());
            }
            Expr *probe = genExpr(1);
            return prog_->ctx().make<ExprStmt>(
                eb_.call(prog_->builtin(Builtin::Checksum),
                         {eb_.cast(tt().s64(), probe)}));
          }
          case 8: { // if / if-else
            Expr *cond = genExpr(cfg_.maxExprDepth - 1);
            Block *then_b =
                genBlock(depth - 1,
                         1 + static_cast<int>(rng_.below(3)));
            Block *else_b =
                rng_.percent(40)
                    ? genBlock(depth - 1,
                               1 + static_cast<int>(rng_.below(3)))
                    : nullptr;
            return prog_->ctx().make<IfStmt>(cond, then_b, else_b);
          }
          case 9: { // bounded for loop
            auto *iv = prog_->ctx().make<VarDecl>(
                freshName("i"), tt().s32(), Storage::Local,
                eb_.lit(0));
            frozen_.insert(iv);
            int64_t bound = 1 + static_cast<int64_t>(rng_.below(8));
            Stmt *init = prog_->ctx().make<DeclStmt>(iv);
            pushScope();
            declare(iv);
            Expr *cond =
                eb_.bin(BinaryOp::Lt, eb_.ref(iv), eb_.lit(bound));
            Stmt *step = prog_->ctx().make<AssignStmt>(
                AssignOp::AddAssign, eb_.ref(iv), eb_.lit(1));
            Block *body =
                genBlock(depth - 1,
                         1 + static_cast<int>(rng_.below(3)));
            if (rng_.percent(20)) {
                // Occasional break/continue behind a condition.
                auto *guard_body = prog_->ctx().make<Block>();
                guard_body->append(
                    rng_.percent(50)
                        ? static_cast<Stmt *>(
                              prog_->ctx().make<BreakStmt>())
                        : static_cast<Stmt *>(
                              prog_->ctx().make<ContinueStmt>()));
                body->append(prog_->ctx().make<IfStmt>(
                    eb_.bin(BinaryOp::Gt, eb_.ref(iv),
                            eb_.lit(bound - 1)),
                    guard_body, nullptr));
            }
            popScope();
            return prog_->ctx().make<ForStmt>(init, cond, step, body);
          }
          case 10: { // bounded while loop with a fresh counter
            auto *outer = prog_->ctx().make<Block>();
            pushScope();
            auto *cv = prog_->ctx().make<VarDecl>(
                freshName("w"), tt().s32(), Storage::Local,
                eb_.lit(0));
            frozen_.insert(cv);
            declare(cv);
            outer->append(prog_->ctx().make<DeclStmt>(cv));
            int64_t bound = 1 + static_cast<int64_t>(rng_.below(6));
            Expr *cond =
                eb_.bin(BinaryOp::Lt, eb_.ref(cv), eb_.lit(bound));
            Block *body =
                genBlock(depth - 1,
                         1 + static_cast<int>(rng_.below(2)));
            body->append(prog_->ctx().make<AssignStmt>(
                AssignOp::AddAssign, eb_.ref(cv), eb_.lit(1)));
            outer->append(
                prog_->ctx().make<WhileStmt>(cond, body));
            popScope();
            return outer;
          }
          default: { // nested block with inner locals
            return genBlock(depth - 1,
                            1 + static_cast<int>(rng_.below(3)));
          }
        }
    }

    //===------------------------------------------------------------===//
    // Functions
    //===------------------------------------------------------------===//

    void
    makeHelpers()
    {
        int n = static_cast<int>(
            rng_.below(static_cast<uint64_t>(cfg_.maxFunctions + 1)));
        for (int i = 0; i < n; i++) {
            bool buffer = rng_.percent(50);
            ScalarKind ret = rng_.pick(
                {ScalarKind::S32, ScalarKind::S64, ScalarKind::U32});
            auto *fn = prog_->ctx().make<FunctionDecl>(
                freshName("fn"), tt().scalar(ret));
            pushScope();
            if (buffer) {
                auto *p = prog_->ctx().make<VarDecl>(
                    freshName("buf"), tt().pointer(tt().s32()),
                    Storage::Param, nullptr);
                fn->addParam(p);
                declare(p);
                // Contract: callers pass an int buffer of >= 4 elems.
                ptrInfo_[p] = {nullptr, tt().s32(), 0, 4};
            }
            int scalar_params = 1 + static_cast<int>(rng_.below(3));
            for (int k = 0; k < scalar_params; k++) {
                auto *p = prog_->ctx().make<VarDecl>(
                    freshName("p"),
                    tt().scalar(rng_.pick({ScalarKind::S32,
                                           ScalarKind::S64,
                                           ScalarKind::S16})),
                    Storage::Param, nullptr);
                fn->addParam(p);
                declare(p);
            }
            Block *body = genBlock(
                1, 2 + static_cast<int>(rng_.below(4)));
            body->append(prog_->ctx().make<ReturnStmt>(
                genExpr(cfg_.maxExprDepth - 1)));
            fn->setBody(body);
            popScope();
            prog_->functions().push_back(fn);
            helpers_.push_back({fn, buffer});
        }
    }

    void
    makeMain()
    {
        auto *fn = prog_->ctx().make<FunctionDecl>("main", tt().s32());
        pushScope();
        auto *body = prog_->ctx().make<Block>();

        // Optional heap usage: allocate, initialize, use, free later.
        if (rng_.percent(55)) {
            uint32_t elems = 2 + static_cast<uint32_t>(rng_.below(4));
            ScalarKind k =
                rng_.pick({ScalarKind::S32, ScalarKind::S64});
            const Type *elem_ty = tt().scalar(k);
            auto *hp = prog_->ctx().make<VarDecl>(
                freshName("hp"), tt().pointer(elem_ty), Storage::Local,
                eb_.cast(tt().pointer(elem_ty),
                         eb_.call(prog_->builtin(Builtin::Malloc),
                                  {eb_.lit(elems * elem_ty->size(),
                                           ScalarKind::S64)})));
            declare(hp);
            frozen_.insert(hp); // never reassigned
            body->append(prog_->ctx().make<DeclStmt>(hp));
            for (uint32_t e = 0; e < elems; e++) {
                body->append(prog_->ctx().make<AssignStmt>(
                    AssignOp::Assign,
                    eb_.index(eb_.ref(hp), eb_.lit(e)), literal()));
            }
            ptrInfo_[hp] = {nullptr, elem_ty, 0, elems};
            heapPtrs_.push_back(hp);
        }

        int stmts = 3 + static_cast<int>(rng_.below(
                            static_cast<uint64_t>(
                                cfg_.maxStmtsPerBlock)));
        for (int i = 0; i < stmts; i++)
            body->append(genStmt(cfg_.maxBlockDepth));

        // Checksum epilogue over global state.
        for (VarDecl *g : prog_->globals()) {
            if (g->type()->isInteger()) {
                body->append(checksumOf(eb_.ref(g)));
            } else if (g->type()->isArray()) {
                for (uint32_t e = 0; e < g->type()->arraySize(); e++) {
                    body->append(checksumOf(
                        eb_.index(eb_.ref(g), eb_.lit(e))));
                }
            } else if (g->type()->isStruct()) {
                for (const FieldDecl *f :
                     g->type()->structDecl()->fields()) {
                    body->append(
                        checksumOf(eb_.member(eb_.ref(g), f, false)));
                }
            }
        }
        // Free heap allocations (after all uses).
        for (VarDecl *hp : heapPtrs_) {
            body->append(prog_->ctx().make<ExprStmt>(
                eb_.call(prog_->builtin(Builtin::Free),
                         {eb_.cast(tt().bytePtr(), eb_.ref(hp))})));
        }
        body->append(prog_->ctx().make<ReturnStmt>(eb_.lit(0)));
        fn->setBody(body);
        popScope();
        prog_->functions().push_back(fn);
        prog_->setMain(fn);
    }

    Stmt *
    checksumOf(Expr *e)
    {
        return prog_->ctx().make<ExprStmt>(
            eb_.call(prog_->builtin(Builtin::Checksum),
                     {eb_.cast(tt().s64(), e)}));
    }
};

} // namespace

std::unique_ptr<ast::Program>
generateProgram(const GeneratorConfig &cfg)
{
    return Generator(cfg).run();
}

} // namespace ubfuzz::gen
